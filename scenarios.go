package qcommit

import (
	"qcommit/internal/core"
	"qcommit/internal/engine"
	"qcommit/internal/voting"
)

// Canonical scenario constructors for the paper's figures and examples,
// shared by the figures tool, the benchmarks and the examples.

// PaperItems returns the replica layout of the paper's Examples 1, 2 and 4:
// item x with single-vote copies at sites 1–4, item y at sites 5–8, and
// r(x)=r(y)=2, w(x)=w(y)=3.
func PaperItems() []ReplicatedItem {
	return []ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 100},
		{Name: "y", Sites: []SiteID{5, 6, 7, 8}, R: 2, W: 3, Initial: 200},
	}
}

// Example1States is the interrupted configuration of Fig. 3: the coordinator
// (site1) is about to crash, site5 is in PC and every other participant is
// in W.
func Example1States() map[SiteID]State {
	return map[SiteID]State{
		1: StateWait, 2: StateWait, 3: StateWait, 4: StateWait,
		5: StatePC,
		6: StateWait, 7: StateWait, 8: StateWait,
	}
}

// Example1Partition is Fig. 3's split: G1={1,2,3}, G2={4,5}, G3={6,7,8}.
func Example1Partition() [][]SiteID {
	return [][]SiteID{{1, 2, 3}, {4, 5}, {6, 7, 8}}
}

// SetupExample1 builds the Fig. 3 scenario under the given protocol: the
// interrupted transaction, the coordinator crash and the three-way
// partition. Run the cluster to let the termination protocol act, then use
// Availability for the per-partition table.
func SetupExample1(proto Protocol, seed int64) (*Cluster, TxnID, error) {
	opts := Options{Protocol: proto, Seed: seed}
	if proto == ProtoSkeenQuorum {
		opts.SkeenVc, opts.SkeenVa = 5, 4 // the paper's Example 1 quorums
	}
	c, err := NewCluster(PaperItems(), opts)
	if err != nil {
		return nil, 0, err
	}
	txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 1, "y": 2}, Example1States())
	c.Crash(1)
	c.Partition(Example1Partition()...)
	return c, txn, nil
}

// Example3Items is Fig. 7's layout: x and y each with single-vote copies at
// sites 2–5, r=2, w=3; site1 is a pure coordinator.
func Example3Items() []ReplicatedItem {
	return []ReplicatedItem{
		{Name: "x", Sites: []SiteID{2, 3, 4, 5}, R: 2, W: 3},
		{Name: "y", Sites: []SiteID{2, 3, 4, 5}, R: 2, W: 3},
	}
}

// SetupExample3 builds the two-coordinator counterexample of Example 3 /
// Fig. 7: coordinator site1 crashed leaving site5 in PC and sites 2–4 in W,
// with all messages between site2 and site3 and from site2 to site5 lost.
// With buggy=true participants violate the buffer-state rule (respond to
// PREPARE-TO-COMMIT in PA and PREPARE-TO-ABORT in PC), which lets the two
// concurrent termination coordinators terminate the transaction
// inconsistently for some interleavings.
func SetupExample3(buggy bool, seed int64) (*Cluster, TxnID, error) {
	opts := Options{Protocol: ProtoQC1, Seed: seed, ExtraSites: []SiteID{1}}
	c, err := NewCluster(Example3Items(), opts)
	if err != nil {
		return nil, 0, err
	}
	if buggy {
		// Rebuild with the buggy participant via the engine-level spec knob.
		c, err = newExample3Buggy(seed)
		if err != nil {
			return nil, 0, err
		}
	}
	c.DropMessages(func(from, to SiteID) bool {
		between23 := (from == 2 && to == 3) || (from == 3 && to == 2)
		from2to5 := from == 2 && to == 5
		return between23 || from2to5
	})
	txn := c.SetupInterrupted(1, map[ItemID]int64{"x": 10, "y": 20}, map[SiteID]State{
		2: StateWait, 3: StateWait, 4: StateWait,
		5: StatePC,
	})
	c.Crash(1)
	return c, txn, nil
}

// newExample3Buggy wires the engine directly because the buggy
// buffer-crossing participant is deliberately not reachable through Options
// — it exists only to reproduce the counterexample.
func newExample3Buggy(seed int64) (*Cluster, error) {
	asgn, err := voting.NewAssignment(
		voting.Uniform("x", 2, 3, 2, 3, 4, 5),
		voting.Uniform("y", 2, 3, 2, 3, 4, 5),
	)
	if err != nil {
		return nil, err
	}
	eng := engine.New(engine.Config{
		Seed:       seed,
		Assignment: asgn,
		Spec:       core.Spec{Variant: core.Protocol1, BuggyBufferCrossing: true},
		ExtraSites: []SiteID{1},
	})
	return &Cluster{eng: eng, opts: Options{Protocol: ProtoQC1, Seed: seed}}, nil
}
