module qcommit

go 1.24
