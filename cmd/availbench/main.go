// Command availbench runs the availability Monte Carlo sweep (the paper's
// claim C1: the quorum-based termination protocols keep more data available
// than Skeen's quorum protocol, 3PC and 2PC) and prints comparison tables.
//
//	availbench -trials 500
//	availbench -trials 500 -sites 12 -copies 5 -items 6 -writes 3 -groups 4
//	availbench -sweep groups     sweep the number of partition groups
//	availbench -sweep copies     sweep the replication degree
//	availbench -sweep sites      sweep the cluster size
//	availbench -sweep writes     sweep the transaction writeset size
//	availbench -workers 8        parallel trial replay (0 = all cores)
//	availbench -ci               print 95% Wilson confidence intervals
//	availbench -progress         report trial completion on stderr
package main

import (
	"flag"
	"fmt"
	"os"

	"qcommit/internal/avail"
)

type runConfig struct {
	trials   int
	seed     int64
	workers  int
	ci       bool
	progress bool
}

func main() {
	trials := flag.Int("trials", 200, "number of random scenarios")
	seed := flag.Int64("seed", 1, "base seed")
	sites := flag.Int("sites", 8, "number of database sites")
	items := flag.Int("items", 4, "number of replicated items")
	copies := flag.Int("copies", 4, "copies per item")
	writes := flag.Int("writes", 2, "items written per transaction")
	groups := flag.Int("groups", 3, "max partition groups")
	votePhase := flag.Int("votephase", 25, "percent of scenarios interrupted during the vote phase (0-100)")
	sweep := flag.String("sweep", "", "sweep a parameter: 'groups', 'copies', 'sites' or 'writes'")
	workers := flag.Int("workers", 0, "trial-replay worker goroutines (0 = GOMAXPROCS)")
	ci := flag.Bool("ci", false, "print 95% Wilson confidence intervals")
	progress := flag.Bool("progress", false, "report trial completion on stderr")
	flag.Parse()

	base := avail.ScenarioParams{
		NumSites:      *sites,
		NumItems:      *items,
		CopiesPerItem: *copies,
		ItemsPerTxn:   *writes,
		MaxGroups:     *groups,
		VotePhasePct:  *votePhase,
	}
	cfg := runConfig{trials: *trials, seed: *seed, workers: *workers, ci: *ci, progress: *progress}

	switch *sweep {
	case "":
		run(base, cfg)
	case "groups":
		for g := 2; g <= 5; g++ {
			p := base
			p.MaxGroups = g
			fmt.Printf("--- max partition groups = %d ---\n", g)
			run(p, cfg)
		}
	case "copies":
		// Odd degrees from 3 up, always ending at full replication so an
		// even -sites still exercises copies == sites.
		for _, c := range sweepValues(3, *sites, 2) {
			p := base
			p.CopiesPerItem = c
			fmt.Printf("--- copies per item = %d ---\n", c)
			run(p, cfg)
		}
	case "sites":
		lo := *copies // smallest cluster that can hold every replica
		if lo < 2 {
			lo = 2
		}
		hi := 16 // default ceiling: double the default cluster size
		if *sites > hi {
			hi = *sites
		}
		if lo > hi {
			hi = lo
		}
		for _, s := range sweepValues(lo, hi, 2) {
			p := base
			p.NumSites = s
			fmt.Printf("--- sites = %d ---\n", s)
			run(p, cfg)
		}
	case "writes":
		for w := 1; w <= *items; w++ {
			p := base
			p.ItemsPerTxn = w
			fmt.Printf("--- items written per transaction = %d ---\n", w)
			run(p, cfg)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

// sweepValues steps from lo by step, always including hi as the endpoint.
func sweepValues(lo, hi, step int) []int {
	var vs []int
	for v := lo; v < hi; v += step {
		vs = append(vs, v)
	}
	if len(vs) == 0 || vs[len(vs)-1] != hi {
		vs = append(vs, hi)
	}
	return vs
}

func run(params avail.ScenarioParams, cfg runConfig) {
	opts := avail.MCOptions{Workers: cfg.workers}
	if cfg.progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	results, err := avail.MonteCarloParallel(params, cfg.trials, cfg.seed, avail.StandardBuilders(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scenarios: %d sites, %d items ×%d copies, %d written, ≤%d groups, %d trials\n",
		params.NumSites, params.NumItems, params.CopiesPerItem, params.ItemsPerTxn, params.MaxGroups, cfg.trials)
	if cfg.ci {
		fmt.Print(avail.FormatMCTableCI(results))
	} else {
		fmt.Print(avail.FormatMCTable(results))
	}
	fmt.Println("note: 3PC terminates every partition but its violation count shows the price (Example 2).")
	fmt.Println()
}
