// Command availbench runs the availability Monte Carlo sweep (the paper's
// claim C1: the quorum-based termination protocols keep more data available
// than Skeen's quorum protocol, 3PC and 2PC) and prints comparison tables.
//
//	availbench -trials 500
//	availbench -trials 500 -sites 12 -copies 5 -items 6 -writes 3 -groups 4
//	availbench -sweep groups     sweep the number of partition groups
//	availbench -sweep copies     sweep the replication degree
//	availbench -sweep sites      sweep the cluster size
//	availbench -sweep writes     sweep the transaction writeset size
//	availbench -workers 8        parallel trial evaluation (0 = all cores)
//	availbench -engine replay    evaluate trials through the discrete-event
//	                             simulator instead of the analytic quorum
//	                             kernel (the default, "analytic", computes
//	                             identical counts ~40× faster; replay is the
//	                             oracle and the only engine for custom specs)
//	availbench -ci               print 95% Wilson confidence intervals
//	availbench -json PATH        also write machine-readable results with
//	                             trials/sec throughput (e.g. BENCH_avail.json)
//	availbench -progress         report trial completion on stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qcommit/internal/avail"
)

type runConfig struct {
	trials   int
	seed     int64
	workers  int
	engine   avail.Engine
	ci       bool
	progress bool
}

// jsonProtocol is one protocol column of a run in -json output.
type jsonProtocol struct {
	Label      string       `json:"label"`
	Trials     int          `json:"trials"`
	TermRate   float64      `json:"term_rate"`
	Blocked    int          `json:"blocked"`
	ReadAvail  float64      `json:"read_avail"`
	WriteAvail float64      `json:"write_avail"`
	Violations int          `json:"violations"`
	Counts     avail.Counts `json:"counts"`
}

// jsonRun is one parameter point of a (possibly swept) benchmark invocation.
type jsonRun struct {
	Params       avail.ScenarioParams `json:"params"`
	Engine       string               `json:"engine"`
	Workers      int                  `json:"workers"`
	Trials       int                  `json:"trials"`
	Seed         int64                `json:"seed"`
	ElapsedSec   float64              `json:"elapsed_sec"`
	TrialsPerSec float64              `json:"trials_per_sec"`
	Protocols    []jsonProtocol       `json:"protocols"`
}

// jsonDoc is the top-level -json document, suitable for tracking the perf
// trajectory (trials_per_sec) and result stability across commits.
type jsonDoc struct {
	Command string    `json:"command"`
	Runs    []jsonRun `json:"runs"`
}

func main() {
	trials := flag.Int("trials", 200, "number of random scenarios")
	seed := flag.Int64("seed", 1, "base seed")
	sites := flag.Int("sites", 8, "number of database sites")
	items := flag.Int("items", 4, "number of replicated items")
	copies := flag.Int("copies", 4, "copies per item")
	writes := flag.Int("writes", 2, "items written per transaction")
	groups := flag.Int("groups", 3, "max partition groups")
	votePhase := flag.Int("votephase", 25, "percent of scenarios interrupted during the vote phase (0-100)")
	sweep := flag.String("sweep", "", "sweep a parameter: 'groups', 'copies', 'sites' or 'writes'")
	workers := flag.Int("workers", 0, "trial-evaluation worker goroutines (0 = GOMAXPROCS)")
	engineFlag := flag.String("engine", "analytic", "trial evaluation engine: 'analytic' (quorum arithmetic) or 'replay' (discrete-event oracle)")
	ci := flag.Bool("ci", false, "print 95% Wilson confidence intervals")
	jsonPath := flag.String("json", "", "write machine-readable results (with trials/sec) to this path")
	progress := flag.Bool("progress", false, "report trial completion on stderr")
	flag.Parse()

	eng, err := avail.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	base := avail.ScenarioParams{
		NumSites:      *sites,
		NumItems:      *items,
		CopiesPerItem: *copies,
		ItemsPerTxn:   *writes,
		MaxGroups:     *groups,
		VotePhasePct:  *votePhase,
	}
	cfg := runConfig{trials: *trials, seed: *seed, workers: *workers, engine: eng, ci: *ci, progress: *progress}

	var doc jsonDoc
	doc.Command = "availbench " + strings.Join(os.Args[1:], " ")
	record := func(r jsonRun) { doc.Runs = append(doc.Runs, r) }

	switch *sweep {
	case "":
		record(run(base, cfg))
	case "groups":
		for g := 2; g <= 5; g++ {
			p := base
			p.MaxGroups = g
			fmt.Printf("--- max partition groups = %d ---\n", g)
			record(run(p, cfg))
		}
	case "copies":
		// Odd degrees from 3 up, always ending at full replication so an
		// even -sites still exercises copies == sites.
		for _, c := range sweepValues(3, *sites, 2) {
			p := base
			p.CopiesPerItem = c
			fmt.Printf("--- copies per item = %d ---\n", c)
			record(run(p, cfg))
		}
	case "sites":
		lo := *copies // smallest cluster that can hold every replica
		if lo < 2 {
			lo = 2
		}
		hi := 16 // default ceiling: double the default cluster size
		if *sites > hi {
			hi = *sites
		}
		if lo > hi {
			hi = lo
		}
		for _, s := range sweepValues(lo, hi, 2) {
			p := base
			p.NumSites = s
			fmt.Printf("--- sites = %d ---\n", s)
			record(run(p, cfg))
		}
	case "writes":
		for w := 1; w <= *items; w++ {
			p := base
			p.ItemsPerTxn = w
			fmt.Printf("--- items written per transaction = %d ---\n", w)
			record(run(p, cfg))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// sweepValues steps from lo by step, always including hi as the endpoint.
func sweepValues(lo, hi, step int) []int {
	var vs []int
	for v := lo; v < hi; v += step {
		vs = append(vs, v)
	}
	if len(vs) == 0 || vs[len(vs)-1] != hi {
		vs = append(vs, hi)
	}
	return vs
}

func run(params avail.ScenarioParams, cfg runConfig) jsonRun {
	opts := avail.MCOptions{Workers: cfg.workers, Engine: cfg.engine}
	if cfg.progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	results, err := avail.MonteCarloParallel(params, cfg.trials, cfg.seed, avail.StandardBuilders(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	fmt.Printf("scenarios: %d sites, %d items ×%d copies, %d written, ≤%d groups, %d trials (engine %s, %.0f trials/s)\n",
		params.NumSites, params.NumItems, params.CopiesPerItem, params.ItemsPerTxn, params.MaxGroups, cfg.trials,
		cfg.engine, float64(cfg.trials)/elapsed.Seconds())
	if cfg.ci {
		fmt.Print(avail.FormatMCTableCI(results))
	} else {
		fmt.Print(avail.FormatMCTable(results))
	}
	fmt.Println("note: 3PC terminates every partition but its violation count shows the price (Example 2).")
	fmt.Println()

	rec := jsonRun{
		Params:       params,
		Engine:       cfg.engine.String(),
		Workers:      cfg.workers,
		Trials:       cfg.trials,
		Seed:         cfg.seed,
		ElapsedSec:   elapsed.Seconds(),
		TrialsPerSec: float64(cfg.trials) / elapsed.Seconds(),
	}
	for _, r := range results {
		rec.Protocols = append(rec.Protocols, jsonProtocol{
			Label:      r.Label,
			Trials:     r.Trials,
			TermRate:   r.Counts.TerminationRate(),
			Blocked:    r.Counts.Blocked,
			ReadAvail:  r.Counts.ReadAvailability(),
			WriteAvail: r.Counts.WriteAvailability(),
			Violations: r.Violations,
			Counts:     r.Counts,
		})
	}
	return rec
}
