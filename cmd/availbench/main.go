// Command availbench runs the availability Monte Carlo sweep (the paper's
// claim C1: the quorum-based termination protocols keep more data available
// than Skeen's quorum protocol, 3PC and 2PC) and prints comparison tables.
//
//	availbench -trials 500
//	availbench -trials 500 -sites 12 -copies 5 -items 6 -writes 3 -groups 4
//	availbench -sweep groups     sweep the number of partition groups
//	availbench -sweep copies     sweep the replication degree
package main

import (
	"flag"
	"fmt"
	"os"

	"qcommit/internal/avail"
)

func main() {
	trials := flag.Int("trials", 200, "number of random scenarios")
	seed := flag.Int64("seed", 1, "base seed")
	sites := flag.Int("sites", 8, "number of database sites")
	items := flag.Int("items", 4, "number of replicated items")
	copies := flag.Int("copies", 4, "copies per item")
	writes := flag.Int("writes", 2, "items written per transaction")
	groups := flag.Int("groups", 3, "max partition groups")
	votePhase := flag.Int("votephase", 25, "percent of scenarios interrupted during the vote phase")
	sweep := flag.String("sweep", "", "sweep a parameter: 'groups' or 'copies'")
	flag.Parse()

	base := avail.ScenarioParams{
		NumSites:      *sites,
		NumItems:      *items,
		CopiesPerItem: *copies,
		ItemsPerTxn:   *writes,
		MaxGroups:     *groups,
		VotePhasePct:  *votePhase,
	}

	switch *sweep {
	case "":
		run(base, *trials, *seed)
	case "groups":
		for g := 2; g <= 5; g++ {
			p := base
			p.MaxGroups = g
			fmt.Printf("--- max partition groups = %d ---\n", g)
			run(p, *trials, *seed)
		}
	case "copies":
		for c := 3; c <= *sites; c += 2 {
			p := base
			p.CopiesPerItem = c
			fmt.Printf("--- copies per item = %d ---\n", c)
			run(p, *trials, *seed)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

func run(params avail.ScenarioParams, trials int, seed int64) {
	results, err := avail.MonteCarlo(params, trials, seed, avail.StandardBuilders())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scenarios: %d sites, %d items ×%d copies, %d written, ≤%d groups, %d trials\n",
		params.NumSites, params.NumItems, params.CopiesPerItem, params.ItemsPerTxn, params.MaxGroups, trials)
	fmt.Print(avail.FormatMCTable(results))
	fmt.Println("note: 3PC terminates every partition but its violation count shows the price (Example 2).")
	fmt.Println()
}
