// Command loadbench drives sustained transaction load through a live qcommit
// cluster and reports commit throughput and latency — the companion of the
// Monte Carlo availability benchmarks, measuring the runtime instead of the
// protocol math. The cluster runs in-process, either on the inproc fabric or
// on real loopback TCP sockets, with each site's WAL selectable between the
// in-memory log, the fsync-per-append FileLog, and the group-commit
// GroupLog, so the fast-commit-path optimizations are measurable against
// their baselines in one binary.
//
// Two load modes:
//
//	closed loop (default): -clients N goroutines each submit a transaction,
//	    wait for its outcome, and immediately submit the next — throughput
//	    is limited by commit latency, the classic interactive shape.
//	open loop: -rate R submits R transactions per second regardless of
//	    completions, the arrival-driven shape; overload shows up as latency
//	    growth and unresolved outcomes rather than reduced submission.
//
// Examples:
//
//	loadbench -transport inproc -clients 16 -duration 2s
//	loadbench -transport tcp -wal group -lockshards 16 -zipf 1.2
//	loadbench -rate 500 -duration 5s -wal file
//	loadbench -preset sweep -json BENCH_live.json
//
// The sweep preset runs the baseline-vs-optimized grid (file WAL + single
// lock shard vs group WAL + sharded locks, on both transports) that
// BENCH_live.json tracks across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"qcommit/internal/core"
	"qcommit/internal/live"
	"qcommit/internal/obs"
	"qcommit/internal/protocol"
	"qcommit/internal/skeenq"
	istats "qcommit/internal/stats"
	"qcommit/internal/threepc"
	"qcommit/internal/transport/inproc"
	"qcommit/internal/transport/tcp"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
	"qcommit/internal/workload"
)

// params is one benchmark configuration.
type params struct {
	Label       string        `json:"label"`
	Transport   string        `json:"transport"`
	Protocol    string        `json:"protocol"`
	Sites       int           `json:"sites"`
	Items       int           `json:"items"`
	Writes      int           `json:"writes_per_txn"`
	ZipfS       float64       `json:"zipf_s"`
	Hot         float64       `json:"hot_fraction"`
	Clients     int           `json:"clients"`
	Rate        float64       `json:"rate_per_sec"` // 0 = closed loop
	Duration    time.Duration `json:"-"`
	WAL         string        `json:"wal"`
	LockShards  int           `json:"lock_shards"`
	TimeoutBase time.Duration `json:"-"`
	Seed        int64         `json:"seed"`
}

// result is one row of the JSON document.
type result struct {
	params
	DurationMs    float64 `json:"duration_ms"`
	TimeoutBaseMs float64 `json:"timeout_base_ms"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	Completed     int     `json:"completed"`
	Committed     int     `json:"committed"`
	Aborted       int     `json:"aborted"`
	Unresolved    int     `json:"unresolved"`
	TxnsPerSec    float64 `json:"txns_per_sec"`
	AbortRate     float64 `json:"abort_rate"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	WALFsyncs     uint64  `json:"wal_fsyncs"`
	WriteFrames   uint64  `json:"write_frames"`
	WriteBatches  uint64  `json:"write_batches"`

	// Stage-level breakdowns scraped from the cluster's obs registry (all
	// sites merged), present when -obs is on. Together they decompose the
	// end-to-end commit latency above: where a transaction waited for locks
	// and how long it held them, how long appends waited for the group
	// fsync (and how big the batches got), and how long frames sat in the
	// transport's write queues.
	LockWaitP99Ms     float64 `json:"lock_wait_p99_ms,omitempty"`
	LockHoldP99Ms     float64 `json:"lock_hold_p99_ms,omitempty"`
	WALFlushWaitP99Ms float64 `json:"wal_flush_wait_p99_ms,omitempty"`
	WALSyncP99Ms      float64 `json:"wal_sync_p99_ms,omitempty"`
	WALBatchMean      float64 `json:"wal_batch_mean,omitempty"`
	WALBatchP95       float64 `json:"wal_batch_p95,omitempty"`
	FlushReleaseP99Ms float64 `json:"flush_release_wait_p99_ms,omitempty"`
	NetQueueP99Ms     float64 `json:"net_enqueue_to_write_p99_ms,omitempty"`
	NetShed           uint64  `json:"net_shed,omitempty"`
	LockDeadlocks     uint64  `json:"lock_deadlocks,omitempty"`
	LockWouldBlock    uint64  `json:"lock_wouldblock,omitempty"`
	TermRounds        uint64  `json:"term_rounds,omitempty"`
}

// doc is the top-level JSON document (same convention as BENCH_avail.json
// and BENCH_churn.json: the command line plus one row per run).
type doc struct {
	Command string   `json:"command"`
	Runs    []result `json:"runs"`
}

func main() {
	var (
		transportF = flag.String("transport", "inproc", "message fabric: inproc or tcp")
		protoF     = flag.String("protocol", "qc1", "commit protocol: qc1, qc2, 2pc, 3pc or skeenq")
		sitesF     = flag.Int("sites", 4, "number of database sites")
		itemsF     = flag.Int("items", 16, "number of items, each replicated at every site with majority quorums")
		writesF    = flag.Int("writes", 1, "items written per transaction")
		zipfF      = flag.Float64("zipf", 0, "zipfian item skew exponent (>1; 0 = uniform)")
		hotF       = flag.Float64("hot", 0, "single-hot-spot fraction in [0,1) (mutually exclusive with -zipf)")
		clientsF   = flag.Int("clients", 16, "closed-loop client goroutines")
		rateF      = flag.Float64("rate", 0, "open-loop submission rate per second (0 = closed loop)")
		durationF  = flag.Duration("duration", 2*time.Second, "how long to apply load")
		txnsF      = flag.Int("txns", 0, "stop after this many completed transactions (0 = run for -duration)")
		walF       = flag.String("wal", "mem", "per-site WAL: mem, file (fsync per append) or group (group commit)")
		waldirF    = flag.String("waldir", "", "directory for file/group WALs (default: a temp dir, removed afterwards)")
		shardsF    = flag.Int("lockshards", 0, "lock-manager shards per site (0 = default, 1 = unsharded baseline)")
		timeoutF   = flag.Duration("timeout-base", 200*time.Millisecond, "protocol timeout unit T")
		seedF      = flag.Int64("seed", 1, "workload seed")
		presetF    = flag.String("preset", "", "'sweep' runs the baseline-vs-optimized grid, ignoring the single-run flags")
		jsonF      = flag.String("json", "", "write machine-readable results to this path")
		obsF       = flag.Bool("obs", true, "attach the obs metrics registry to every run and report stage-level latency breakdowns")
	)
	flag.Parse()

	var runs []params
	if *presetF != "" {
		if *presetF != "sweep" {
			fmt.Fprintf(os.Stderr, "loadbench: unknown preset %q\n", *presetF)
			os.Exit(1)
		}
		runs = sweepGrid(*durationF, *seedF)
	} else {
		runs = []params{{
			Label:       fmt.Sprintf("%s/%s-wal/shards=%d", *transportF, *walF, *shardsF),
			Transport:   *transportF,
			Protocol:    *protoF,
			Sites:       *sitesF,
			Items:       *itemsF,
			Writes:      *writesF,
			ZipfS:       *zipfF,
			Hot:         *hotF,
			Clients:     *clientsF,
			Rate:        *rateF,
			Duration:    *durationF,
			WAL:         *walF,
			LockShards:  *shardsF,
			TimeoutBase: *timeoutF,
			Seed:        *seedF,
		}}
	}

	out := doc{Command: "loadbench " + strings.Join(os.Args[1:], " ")}
	for _, p := range runs {
		r, err := runOne(p, *waldirF, *txnsF, *obsF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadbench:", err)
			os.Exit(1)
		}
		out.Runs = append(out.Runs, r)
		fmt.Printf("%-40s %8.1f txn/s  p50 %6.2fms  p95 %6.2fms  p99 %6.2fms  abort %5.1f%%  (%d committed, %d aborted, %d unresolved)\n",
			r.Label, r.TxnsPerSec, r.P50Ms, r.P95Ms, r.P99Ms, 100*r.AbortRate, r.Committed, r.Aborted, r.Unresolved)
	}

	if *jsonF != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonF, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadbench:", err)
			os.Exit(1)
		}
		fmt.Printf("loadbench: wrote %s (%d runs)\n", *jsonF, len(out.Runs))
	}
}

// sweepGrid is the tracked baseline-vs-optimized comparison: the pre-PR
// commit path (fsync per append, one lock shard, per-frame writes) against
// the optimized one (group commit, sharded locks, coalesced writev batches),
// on both fabrics, plus the memory-WAL ceiling and one open-loop point.
func sweepGrid(d time.Duration, seed int64) []params {
	base := params{
		Protocol: "qc1", Sites: 3, Items: 256, Writes: 1, ZipfS: 1.2,
		Clients: 32, Duration: d, TimeoutBase: 200 * time.Millisecond, Seed: seed,
	}
	mk := func(label, tr, wal string, shards int, rate float64) params {
		p := base
		p.Label, p.Transport, p.WAL, p.LockShards, p.Rate = label, tr, wal, shards, rate
		return p
	}
	return []params{
		mk("inproc/mem-wal/ceiling", "inproc", "mem", 0, 0),
		mk("inproc/file-wal/shards=1/baseline", "inproc", "file", 1, 0),
		mk("inproc/group-wal/sharded/optimized", "inproc", "group", 0, 0),
		mk("tcp/file-wal/shards=1/baseline", "tcp", "file", 1, 0),
		mk("tcp/group-wal/sharded/optimized", "tcp", "group", 0, 0),
		mk("inproc/group-wal/open-loop-2000", "inproc", "group", 0, 2000),
	}
}

// fsyncCounter is implemented by WALs that count their fsyncs.
type fsyncCounter interface{ Fsyncs() uint64 }

func runOne(p params, waldir string, maxTxns int, withObs bool) (result, error) {
	sites := make([]types.SiteID, p.Sites)
	for i := range sites {
		sites[i] = types.SiteID(i + 1)
	}
	configs := make([]voting.ItemConfig, p.Items)
	for i := range configs {
		copies := make([]voting.Copy, len(sites))
		for j, s := range sites {
			copies[j] = voting.Copy{Site: s, Votes: 1}
		}
		w := len(sites)/2 + 1
		r := len(sites) + 1 - w
		configs[i] = voting.ItemConfig{Item: types.ItemID(fmt.Sprintf("k%03d", i)), Copies: copies, R: r, W: w}
	}
	asgn, err := voting.NewAssignment(configs...)
	if err != nil {
		return result{}, err
	}
	spec, err := buildSpec(p.Protocol, sites)
	if err != nil {
		return result{}, err
	}

	cfg := live.Config{
		Assignment: asgn,
		Spec:       spec,
		// The benchmark measures the runtime, not simulated propagation:
		// keep the inproc fabric's injected delay minimal.
		MinDelay:    time.Microsecond,
		MaxDelay:    20 * time.Microsecond,
		TimeoutBase: p.TimeoutBase,
		Seed:        p.Seed,
		LockShards:  p.LockShards,
	}
	var reg *obs.Registry
	if withObs {
		// Metrics only — no span recorder: the benchmark wants the registry's
		// stage histograms without paying the sampling mutex on the Begin path.
		reg = obs.NewRegistry()
		cfg.Obs = &obs.Observer{Registry: reg}
	}
	var tcpFab *tcp.Fabric
	switch p.Transport {
	case "inproc":
		cfg.Transport = inproc.New(inproc.Options{MinDelay: cfg.MinDelay, MaxDelay: cfg.MaxDelay, Seed: p.Seed})
	case "tcp":
		tcpFab, err = tcp.NewFabric(sites, tcp.Options{})
		if err != nil {
			return result{}, err
		}
		tcpFab.RegisterMetrics(reg)
		cfg.Transport = tcpFab
	default:
		return result{}, fmt.Errorf("unknown transport %q (want inproc or tcp)", p.Transport)
	}

	if p.WAL != "mem" {
		if waldir == "" {
			dir, err := os.MkdirTemp("", "loadbench-wal-")
			if err != nil {
				return result{}, err
			}
			defer os.RemoveAll(dir)
			waldir = dir
		}
	}
	var logMu sync.Mutex
	logs := map[types.SiteID]wal.Log{}
	cfg.WAL = func(id types.SiteID) wal.Log {
		var l wal.Log
		var err error
		path := filepath.Join(waldir, fmt.Sprintf("%s-site%d.wal", sanitize(p.Label), id))
		switch p.WAL {
		case "mem":
			return nil
		case "file":
			l, err = wal.OpenFileLog(path)
		case "group":
			l, err = wal.OpenGroupLog(path)
		default:
			err = fmt.Errorf("unknown -wal %q (want mem, file or group)", p.WAL)
		}
		if err != nil {
			panic(fmt.Sprintf("loadbench: site%d wal: %v", id, err))
		}
		logMu.Lock()
		logs[id] = l
		logMu.Unlock()
		return l
	}

	mix := workload.Mix{WritesPerTxn: p.Writes, ZipfS: p.ZipfS, HotFraction: p.Hot}
	gen, err := workload.NewGenerator(asgn, mix, p.Seed)
	if err != nil {
		return result{}, err
	}

	cl := live.New(cfg)
	st := newStats()
	var genMu sync.Mutex
	next := func() workload.Txn {
		genMu.Lock()
		defer genMu.Unlock()
		return gen.Next()
	}
	waitDeadline := 10*p.TimeoutBase + 5*time.Second

	start := time.Now()
	stopAt := start.Add(p.Duration)
	oneTxn := func() {
		t := next()
		began := time.Now()
		id := cl.Begin(t.Coord, t.Writeset)
		o := cl.WaitOutcome(id, waitDeadline)
		st.record(o, time.Since(began), maxTxns)
	}
	var wg sync.WaitGroup
	if p.Rate <= 0 {
		for c := 0; c < p.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stopAt) && !st.done() {
					oneTxn()
				}
			}()
		}
	} else {
		interval := time.Duration(float64(time.Second) / p.Rate)
		ticker := time.NewTicker(interval)
		for time.Now().Before(stopAt) && !st.done() {
			<-ticker.C
			wg.Add(1)
			go func() {
				defer wg.Done()
				oneTxn()
			}()
		}
		ticker.Stop()
	}
	wg.Wait()
	elapsed := time.Since(start)
	cl.Stop()

	r := result{params: p,
		DurationMs:    float64(p.Duration) / float64(time.Millisecond),
		TimeoutBaseMs: float64(p.TimeoutBase) / float64(time.Millisecond),
	}
	st.fill(&r, elapsed)
	for _, l := range logs {
		if fc, ok := l.(fsyncCounter); ok {
			r.WALFsyncs += fc.Fsyncs()
		}
		if c, ok := l.(interface{ Close() error }); ok {
			c.Close()
		}
	}
	if tcpFab != nil {
		ws := tcpFab.WriteStats()
		r.WriteFrames, r.WriteBatches = ws.Frames, ws.Batches
	}
	scrapeObs(&r, reg)
	return r, nil
}

// scrapeObs folds the registry's per-site stage metrics into the result row:
// histograms merge across sites before taking quantiles, counters sum. Nil
// registry (-obs=false) leaves the stage fields zero, and omitempty drops
// them from the JSON.
func scrapeObs(r *result, reg *obs.Registry) {
	if reg == nil {
		return
	}
	snaps := reg.Snapshot()
	p99ms := func(base string) float64 {
		return obs.MergeHistograms(snaps, base).Quantile(0.99) / float64(time.Millisecond)
	}
	r.LockWaitP99Ms = p99ms("qcommit_lock_wait_ns")
	r.LockHoldP99Ms = p99ms("qcommit_lock_hold_ns")
	r.WALFlushWaitP99Ms = p99ms("qcommit_wal_flush_wait_ns")
	r.WALSyncP99Ms = p99ms("qcommit_wal_sync_ns")
	r.FlushReleaseP99Ms = p99ms("qcommit_flush_release_wait_ns")
	r.NetQueueP99Ms = p99ms("qcommit_net_enqueue_to_write_ns")
	batch := obs.MergeHistograms(snaps, "qcommit_wal_batch_records")
	r.WALBatchMean = batch.Mean()
	r.WALBatchP95 = batch.Quantile(0.95)
	r.NetShed = obs.SumCounters(snaps, "qcommit_net_shed_total")
	r.LockDeadlocks = obs.SumCounters(snaps, "qcommit_lock_deadlocks_total")
	r.LockWouldBlock = obs.SumCounters(snaps, "qcommit_lock_wouldblock_total")
	r.TermRounds = obs.SumCounters(snaps, "qcommit_term_rounds_total")
}

// stats accumulates completions.
type stats struct {
	mu         sync.Mutex
	latencies  []time.Duration // committed only
	committed  int
	aborted    int
	unresolved int
	stop       bool
}

func newStats() *stats { return &stats{} }

func (s *stats) record(o types.Outcome, d time.Duration, maxTxns int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch o {
	case types.OutcomeCommitted:
		s.committed++
		s.latencies = append(s.latencies, d)
	case types.OutcomeAborted:
		s.aborted++
	default:
		s.unresolved++
	}
	if maxTxns > 0 && s.committed+s.aborted >= maxTxns {
		s.stop = true
	}
}

func (s *stats) done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stop
}

func (s *stats) fill(r *result, elapsed time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.Committed, r.Aborted, r.Unresolved = s.committed, s.aborted, s.unresolved
	r.Completed = s.committed + s.aborted
	r.ElapsedSec = elapsed.Seconds()
	if r.ElapsedSec > 0 {
		r.TxnsPerSec = float64(r.Completed) / r.ElapsedSec
	}
	if r.Completed > 0 {
		r.AbortRate = float64(s.aborted) / float64(r.Completed)
	}
	if len(s.latencies) > 0 {
		sort.Slice(s.latencies, func(i, j int) bool { return s.latencies[i] < s.latencies[j] })
		pct := func(p float64) float64 {
			return float64(istats.PercentileNearestRank(s.latencies, p)) / float64(time.Millisecond)
		}
		r.P50Ms, r.P95Ms, r.P99Ms = pct(50), pct(95), pct(99)
	}
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}

func buildSpec(proto string, sites []types.SiteID) (protocol.Spec, error) {
	switch strings.ToLower(proto) {
	case "qc1":
		return core.Spec{Variant: core.Protocol1}, nil
	case "qc2":
		return core.Spec{Variant: core.Protocol2}, nil
	case "2pc":
		return twopc.Spec{}, nil
	case "3pc":
		return threepc.Spec{}, nil
	case "skeenq":
		vc := len(sites)/2 + 1
		va := len(sites) + 1 - vc
		spec := skeenq.Uniform(sites, vc, va)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return spec, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (want qc1, qc2, 2pc, 3pc or skeenq)", proto)
	}
}
