// Command qlint runs qcommit's project-specific static-analysis suite: the
// determinism, lockheld, obsnil, and droppederr analyzers that enforce the
// repo's correct-by-convention invariants at compile time (see internal/lint
// for what each checks and why).
//
// Two ways to run it:
//
//	go run ./cmd/qlint ./...                  # standalone, via go list
//	go build -o qlint ./cmd/qlint
//	go vet -vettool=./qlint ./...             # as a vet tool (what CI does)
//
// Individual analyzers can be selected with -determinism, -lockheld,
// -obsnil, -droppederr (both modes and through go vet). Findings are
// suppressed per line with "//qlint:allow <analyzer> <reason>"; the reason
// is mandatory.
package main

import (
	"qcommit/internal/lint"
	"qcommit/internal/lint/driver"
)

func main() {
	driver.Main(lint.All())
}
