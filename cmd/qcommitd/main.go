// Command qcommitd serves ONE database site of a replicated qcommit cluster
// as a real networked process: protocol frames travel over TCP to the peer
// qcommitd processes, clients drive transactions over the same wire, and
// kill -9 is a genuine site failure. Every process of a deployment must be
// started with the same -sites/-items/-protocol configuration, since the
// weighted-voting assignment is part of the protocol contract.
//
// A three-site cluster on one machine:
//
//	qcommitd -site 1 -peers '1=:7001,2=:7002,3=:7003' -items x,y &
//	qcommitd -site 2 -peers '1=:7001,2=:7002,3=:7003' -items x,y &
//	qcommitd -site 3 -peers '1=:7001,2=:7002,3=:7003' -items x,y &
//
// Each item is replicated at every site with one vote per copy and majority
// read/write quorums. The -failpoint flag deterministically injects the
// paper's motivating failure for the e2e harness: crash-before-decision
// SIGKILLs this process the instant its coordinator is about to send the
// first decision-phase message, after every participant has voted — the
// exact window where two-phase commit blocks all survivors and the paper's
// quorum-based protocols terminate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"qcommit/internal/core"
	"qcommit/internal/live"
	"qcommit/internal/msg"
	"qcommit/internal/obs"
	"qcommit/internal/protocol"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/transport"
	"qcommit/internal/transport/tcp"
	"qcommit/internal/twopc"
	"qcommit/internal/types"
	"qcommit/internal/voting"
	"qcommit/internal/wal"
)

func main() {
	var (
		site       = flag.Int("site", 0, "site ID served by this process (required)")
		peersFlag  = flag.String("peers", "", "comma-separated site=host:port map for every site, e.g. '1=127.0.0.1:7001,2=127.0.0.1:7002' (required)")
		itemsFlag  = flag.String("items", "x", "comma-separated item names, each replicated at every site with majority quorums")
		protoFlag  = flag.String("protocol", "qc1", "commit protocol: qc1, qc2, 2pc, 3pc or skeenq")
		stratFlag  = flag.String("strategy", "quorum", "data-access strategy (only 'quorum' is supported across processes)")
		timeout    = flag.Duration("timeout-base", 50*time.Millisecond, "protocol timeout unit T")
		termRounds = flag.Int("max-term-rounds", 3, "termination retry cap")
		walFlag    = flag.String("wal", "mem", "write-ahead log: mem (lost on process exit), file (fsync per append) or group (group commit: concurrent appends share one fsync)")
		waldir     = flag.String("waldir", ".", "directory for the on-disk WAL (-wal file|group); the log is qcommitd-site<N>.wal, reused across restarts for recovery")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables. The /metrics and /debug/txns handlers ride the same mux when -metrics is off")
		metrics    = flag.String("metrics", "", "serve Prometheus-text /metrics and the /debug/txns slow-transaction view on this address (e.g. localhost:9090); empty disables the HTTP endpoint but -pprof still exposes the handlers")
		traceEvery = flag.Int("trace-sample", 16, "record a commit-path span for every Nth transaction this site coordinates (1 traces everything; used by /debug/txns)")
		failpoint  = flag.String("failpoint", "", "deterministic fault injection: 'crash-before-decision' SIGKILLs the process when its coordinator first sends a decision-phase message")
	)
	flag.Parse()
	if err := run(*site, *peersFlag, *itemsFlag, *protoFlag, *stratFlag, *timeout, *termRounds, *walFlag, *waldir, *pprofAddr, *metrics, *traceEvery, *failpoint); err != nil {
		fmt.Fprintln(os.Stderr, "qcommitd:", err)
		os.Exit(1)
	}
}

// openWAL opens this site's log per -wal. The returned closer is nil for the
// in-memory log.
func openWAL(mode, dir string, site int) (wal.Log, func() error, error) {
	path := filepath.Join(dir, fmt.Sprintf("qcommitd-site%d.wal", site))
	switch mode {
	case "mem":
		return nil, nil, nil // NewServer defaults to a fresh MemLog
	case "file":
		l, err := wal.OpenFileLog(path)
		if err != nil {
			return nil, nil, err
		}
		return l, l.Close, nil
	case "group":
		l, err := wal.OpenGroupLog(path)
		if err != nil {
			return nil, nil, err
		}
		return l, l.Close, nil
	default:
		return nil, nil, fmt.Errorf("unknown -wal mode %q (want mem, file or group)", mode)
	}
}

func run(site int, peersFlag, itemsFlag, protoFlag, stratFlag string, timeoutBase time.Duration, termRounds int, walMode, waldir, pprofAddr, metricsAddr string, traceEvery int, failpoint string) error {
	if site <= 0 {
		return fmt.Errorf("-site is required and must be positive")
	}
	self := types.SiteID(site)
	peers, err := parsePeers(peersFlag)
	if err != nil {
		return err
	}
	listen, ok := peers[self]
	if !ok {
		return fmt.Errorf("-peers does not list site %d", site)
	}
	if stratFlag != "quorum" {
		return fmt.Errorf("strategy %q: only 'quorum' works across processes (the adaptive strategies track cluster-global state this deployment shape cannot share)", stratFlag)
	}
	sites := make([]types.SiteID, 0, len(peers))
	for s := range peers {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	asgn, err := buildAssignment(itemsFlag, sites)
	if err != nil {
		return err
	}
	spec, err := buildSpec(protoFlag, sites)
	if err != nil {
		return err
	}

	log, closeWAL, err := openWAL(walMode, waldir, site)
	if err != nil {
		return err
	}
	if closeWAL != nil {
		defer closeWAL()
	}

	// The observer is always built: its registry backs /metrics on both the
	// -metrics and -pprof muxes, and the span recorder backs /debug/txns.
	// The hooks are nil-safe throughout, so a deployment that never scrapes
	// pays one atomic per recording; the seed ties the sampling phase to the
	// site so multi-site traces do not all sample the same ordinals.
	ob := &obs.Observer{
		Registry: obs.NewRegistry(),
		Spans:    obs.NewSpans(traceEvery, 256, int64(site)),
	}
	// DefaultServeMux also carries the net/http/pprof handlers, so -pprof
	// alone exposes the full observability surface.
	http.HandleFunc("/metrics", metricsHandler(ob))
	http.HandleFunc("/debug/txns", txnsHandler(ob))
	var metricsSrv *http.Server
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "qcommitd: pprof:", err)
			}
		}()
	}
	if metricsAddr != "" {
		metricsSrv = &http.Server{Addr: metricsAddr, Handler: http.DefaultServeMux}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "qcommitd: metrics:", err)
			}
		}()
	}

	ep, err := tcp.New(self, listen, peers, tcp.Options{})
	if err != nil {
		return err
	}
	ep.RegisterMetrics(ob.Reg())
	var tr transport.Transport = ep
	if failpoint != "" {
		if failpoint != "crash-before-decision" {
			return fmt.Errorf("unknown failpoint %q", failpoint)
		}
		tr = &crashBeforeDecision{Transport: ep}
	}

	// The client handler needs the server, which needs the bound transport;
	// the pointer closes the loop. Frames racing the startup window see nil
	// and are dropped — clients connect after the ready line below.
	var srv atomic.Pointer[live.Server]
	ep.BindClient(func(env msg.Envelope, reply func(msg.Message) error) {
		if s := srv.Load(); s != nil {
			handleClient(s, ep, env, reply)
		}
	})
	s, err := live.NewServer(self, live.ServerConfig{
		Assignment:           asgn,
		Spec:                 spec,
		TimeoutBase:          timeoutBase,
		MaxTerminationRounds: termRounds,
		WAL:                  log,
		Obs:                  ob,
	}, tr)
	if err != nil {
		return err
	}
	srv.Store(s)
	fmt.Printf("qcommitd: site %d serving %s on %s (%d sites, T=%v)\n",
		site, protoFlag, ep.Addr(), len(sites), timeoutBase)

	// Graceful shutdown: stop accepting new work first (the client handler
	// sheds requests once the server pointer is cleared), then stop the node
	// — which drains its flusher and closes the transport — then flush and
	// close the WAL, and finally let the metrics listener finish in-flight
	// scrapes. Second signal exits immediately.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("qcommitd: site %d shutting down\n", site)
	srv.Store(nil)
	done := make(chan struct{})
	go func() {
		s.Stop()
		if closeWAL != nil {
			closeWAL()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-sig:
		return fmt.Errorf("forced exit on second signal")
	}
	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		metricsSrv.Shutdown(ctx)
	}
	return nil
}

// metricsHandler serves the registry in Prometheus text exposition format.
func metricsHandler(ob *obs.Observer) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		ob.Reg().WritePrometheus(w)
	}
}

// txnsHandler serves the recent sampled commit-path spans as JSON, slowest
// first — the "why was that transaction slow" view. ?n= bounds the count
// (default 32).
func txnsHandler(ob *obs.Observer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
			n = v
		}
		started, finished := ob.Spanner().Stats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Started  uint64     `json:"spans_started"`
			Finished uint64     `json:"spans_finished"`
			Slowest  []obs.Span `json:"slowest"`
		}{started, finished, ob.Spanner().Slowest(n)})
	}
}

// handleClient serves one client request. ClientWait blocks for up to the
// request's own deadline, so it answers from a goroutine; the connection
// reply path is safe from any goroutine.
func handleClient(s *live.Server, ep *tcp.Endpoint, env msg.Envelope, reply func(msg.Message) error) {
	switch m := env.Msg.(type) {
	case msg.ClientBegin:
		txn := s.Begin(m.Writeset)
		reply(msg.ClientBeginAck{Req: m.Req, Txn: txn})
	case msg.ClientWait:
		go func() {
			o := s.WaitOutcome(m.Txn, m.Timeout)
			reply(msg.ClientOutcome{Req: m.Req, Txn: m.Txn, Outcome: o})
		}()
	case msg.ClientRead:
		v, ver, ok := s.ReadItem(m.Item)
		reply(msg.ClientValue{Req: m.Req, Item: m.Item, Value: v, Version: ver, Found: ok})
	case msg.CtrlPartition:
		if len(m.Groups) == 0 {
			ep.Heal()
		} else {
			ep.Partition(m.Groups...)
		}
		reply(msg.CtrlAck{Req: m.Req})
	}
}

// parsePeers parses '1=host:port,2=host:port,...'.
func parsePeers(s string) (map[types.SiteID]string, error) {
	if s == "" {
		return nil, fmt.Errorf("-peers is required")
	}
	peers := make(map[types.SiteID]string)
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("-peers entry %q is not site=addr", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-peers entry %q: bad site ID", part)
		}
		peers[types.SiteID(n)] = addr
	}
	return peers, nil
}

// buildAssignment replicates every named item at every site, one vote per
// copy, majority read/write quorums.
func buildAssignment(itemsFlag string, sites []types.SiteID) (*voting.Assignment, error) {
	var configs []voting.ItemConfig
	for _, name := range strings.Split(itemsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		copies := make([]voting.Copy, len(sites))
		for i, s := range sites {
			copies[i] = voting.Copy{Site: s, Votes: 1}
		}
		w := len(sites)/2 + 1
		r := len(sites) + 1 - w
		configs = append(configs, voting.ItemConfig{Item: types.ItemID(name), Copies: copies, R: r, W: w})
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("-items names no items")
	}
	return voting.NewAssignment(configs...)
}

func buildSpec(proto string, sites []types.SiteID) (protocol.Spec, error) {
	switch strings.ToLower(proto) {
	case "qc1":
		return core.Spec{Variant: core.Protocol1}, nil
	case "qc2":
		return core.Spec{Variant: core.Protocol2}, nil
	case "2pc":
		return twopc.Spec{}, nil
	case "3pc":
		return threepc.Spec{}, nil
	case "skeenq":
		vc := len(sites)/2 + 1
		va := len(sites) + 1 - vc
		spec := skeenq.Uniform(sites, vc, va)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return spec, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (want qc1, qc2, 2pc, 3pc or skeenq)", proto)
	}
}

// crashBeforeDecision SIGKILLs the process the moment the hosted coordinator
// tries to send its first decision-phase message. Coordinators only reach
// that point after collecting every vote, so the kill lands in the exact
// window the paper studies: all participants are prepared and none has heard
// a decision. kill(2) with SIGKILL means no deferred cleanup, no WAL flush
// ordering tricks — the process is simply gone, as in a power failure.
type crashBeforeDecision struct {
	transport.Transport
}

func (t *crashBeforeDecision) Send(env msg.Envelope) {
	switch env.Msg.Kind() {
	case msg.KindPrepareToCommit, msg.KindPrepareToAbort, msg.KindCommit, msg.KindAbort:
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: SIGKILL cannot be handled
	}
	t.Transport.Send(env)
}
