// Command churnbench runs the steady-state availability study: sites fail
// and repair (exponential MTTF/MTTR), partitions optionally form and heal,
// and a continuous transaction stream runs the full commit protocol while
// the fault timeline plays out. It prints per-protocol comparison tables
// and tracks machine-readable results.
//
//	churnbench -runs 16
//	churnbench -mttf 2s -mttr 400ms -horizon 5s
//	churnbench -partmtbf 1500ms -partmttr 500ms     enable partition churn
//	churnbench -protocol QC1,QC2,2PC                study a subset
//	churnbench -strategy missing-writes             adaptive data access
//	churnbench -strategy dynamic                    dynamic vote reassignment
//	churnbench -strategy both                       quorum vs missing-writes
//	churnbench -strategy all                        all three strategies
//	churnbench -sweep mttr                          MTTR sensitivity: repair
//	                                                speed from mttr/4 to 4×mttr
//	churnbench -sweep mttf                          failure-rate sensitivity
//	churnbench -sweep sites                         cluster-size scaling:
//	                                                8→128 sites, 128→2048 items
//	churnbench -engine hybrid                       analytic fast path
//	churnbench -engine both                         replay vs hybrid per point
//	churnbench -workers 8                           parallel run evaluation
//	churnbench -ci                                  95% Wilson intervals
//	churnbench -json PATH                           write results + runs/sec
//	                                                (e.g. BENCH_churn.json)
//	churnbench -cpuprofile cpu.pprof                write pprof profiles
//	churnbench -memprofile mem.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"qcommit/internal/churn"
	"qcommit/internal/sim"
	"qcommit/internal/voting"
)

type runConfig struct {
	runs     int
	seed     int64
	workers  int
	builders []churn.Builder
	ci       bool
	progress bool
}

// jsonProtocol is one protocol column of a study in -json output.
type jsonProtocol struct {
	Label           string       `json:"label"`
	Runs            int          `json:"runs"`
	Submitted       int          `json:"submitted"`
	CommittedFrac   float64      `json:"committed_frac"`
	AbortedFrac     float64      `json:"aborted_frac"`
	BlockedFrac     float64      `json:"blocked_frac"`
	BlockedShare    float64      `json:"blocked_time_share"`
	ReadAvail       float64      `json:"read_avail"`
	WriteAvail      float64      `json:"write_avail"`
	P50Ms           float64      `json:"p50_ms"`
	P95Ms           float64      `json:"p95_ms"`
	P99Ms           float64      `json:"p99_ms"`
	Violations      int          `json:"violations"`
	Counts          churn.Counts `json:"counts"`
	CommittedCILo   float64      `json:"committed_ci_lo"`
	CommittedCIHi   float64      `json:"committed_ci_hi"`
	TerminatedCILo  float64      `json:"terminated_ci_lo"`
	TerminatedCIHi  float64      `json:"terminated_ci_hi"`
	TerminatedCount int          `json:"terminated"`
}

// jsonRun is one parameter point of a (possibly swept) invocation.
type jsonRun struct {
	Params     churn.Params `json:"params"`
	Strategy   string       `json:"strategy"`
	Engine     string       `json:"engine"`
	MTTFMs     float64      `json:"mttf_ms"`
	MTTRMs     float64      `json:"mttr_ms"`
	Runs       int          `json:"runs"`
	Seed       int64        `json:"seed"`
	Workers    int          `json:"workers"`
	ElapsedSec float64      `json:"elapsed_sec"`
	RunsPerSec float64      `json:"runs_per_sec"`
	// TrialsPerSec counts (run, protocol) evaluations per second — the
	// study's unit of work, comparable across engines and sweeps.
	TrialsPerSec float64        `json:"trials_per_sec"`
	Protocols    []jsonProtocol `json:"protocols"`
}

// jsonDoc is the top-level -json document.
type jsonDoc struct {
	Command string    `json:"command"`
	Runs    []jsonRun `json:"runs"`
}

func main() {
	runs := flag.Int("runs", 16, "independent timeline runs per parameter point")
	seed := flag.Int64("seed", 1, "base seed (run r draws from seed+r)")
	protocols := flag.String("protocol", "all", "comma-separated protocols (2PC,3PC,SkeenQ,QC1,QC2) or 'all'")
	sites := flag.Int("sites", 8, "number of database sites")
	items := flag.Int("items", 4, "number of replicated items")
	copies := flag.Int("copies", 4, "copies per item")
	writes := flag.Int("writes", 2, "items written per transaction")
	hot := flag.Float64("hot", 0, "fraction of writes hitting the first item (hot spot)")
	arrival := flag.Duration("arrival", 100*time.Millisecond, "mean transaction inter-arrival time (virtual)")
	mttf := flag.Duration("mttf", 2*time.Second, "per-site mean time to failure (0 disables site churn)")
	mttr := flag.Duration("mttr", 400*time.Millisecond, "per-site mean time to repair")
	partMTBF := flag.Duration("partmtbf", 0, "mean time between partitions (0 disables partition churn)")
	partMTTR := flag.Duration("partmttr", 500*time.Millisecond, "mean partition duration")
	groups := flag.Int("groups", 3, "max partition groups")
	horizon := flag.Duration("horizon", 5*time.Second, "virtual-time length of each run")
	strategy := flag.String("strategy", "quorum", "data-access strategy: 'quorum', 'missing-writes' (alias 'mw'), 'dynamic' (alias 'dv'), 'both' (quorum + missing-writes), or 'all' (all three)")
	sweep := flag.String("sweep", "", "sweep a parameter: 'mttr' (repair speed), 'mttf' (failure rate) or 'sites' (cluster size ×1..×16 at constant aggregate fault and load rates)")
	engineArg := flag.String("engine", "replay", "study engine: 'replay', 'hybrid' (identical fates, analytic fast path) or 'both'")
	workers := flag.Int("workers", 0, "run-evaluation worker goroutines (0 = GOMAXPROCS)")
	ci := flag.Bool("ci", false, "print 95% Wilson confidence intervals")
	jsonPath := flag.String("json", "", "write machine-readable results (with runs/sec) to this path")
	progress := flag.Bool("progress", false, "report run completion with ETA on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path at exit")
	flag.Parse()
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	builders, err := selectBuilders(*protocols)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	strategies, err := selectStrategies(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engines, err := selectEngines(*engineArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("wrote %s\n", *memProfile)
		}()
	}

	base := churn.Params{
		NumSites:         *sites,
		NumItems:         *items,
		CopiesPerItem:    *copies,
		WritesPerTxn:     *writes,
		HotFraction:      *hot,
		MeanInterarrival: sim.Duration(arrival.Nanoseconds()),
		MTTF:             sim.Duration(mttf.Nanoseconds()),
		MTTR:             sim.Duration(mttr.Nanoseconds()),
		PartitionMTBF:    sim.Duration(partMTBF.Nanoseconds()),
		PartitionMTTR:    sim.Duration(partMTTR.Nanoseconds()),
		MaxGroups:        *groups,
		Horizon:          sim.Duration(horizon.Nanoseconds()),
	}
	cfg := runConfig{runs: *runs, seed: *seed, workers: *workers, builders: builders, ci: *ci, progress: *progress}

	var doc jsonDoc
	doc.Command = "churnbench " + strings.Join(os.Args[1:], " ")
	record := func(r jsonRun) { doc.Runs = append(doc.Runs, r) }

	// Sensitivity sweeps scale the swept mean by ¼, ½, 1, 2 and 4.
	multipliers := []struct {
		num, den sim.Duration
	}{{1, 4}, {1, 2}, {1, 1}, {2, 1}, {4, 1}}

	// evaluate runs one parameter point under every selected engine.
	evaluate := func(p churn.Params) {
		for _, eng := range engines {
			p := p
			p.Engine = eng
			if len(engines) > 1 {
				fmt.Printf("[engine: %v]\n", eng)
			}
			record(run(p, cfg))
		}
	}

	for _, st := range strategies {
		base := base
		base.Strategy = st
		if len(strategies) > 1 {
			fmt.Printf("=== strategy: %v ===\n", st)
		}
		switch *sweep {
		case "":
			evaluate(base)
		case "mttr":
			for _, m := range multipliers {
				p := base
				p.MTTR = base.MTTR * m.num / m.den
				fmt.Printf("--- MTTR = %v (MTTF %v) ---\n", time.Duration(p.MTTR), time.Duration(p.MTTF))
				evaluate(p)
			}
		case "mttf":
			for _, m := range multipliers {
				p := base
				p.MTTF = base.MTTF * m.num / m.den
				fmt.Printf("--- MTTF = %v (MTTR %v) ---\n", time.Duration(p.MTTF), time.Duration(p.MTTR))
				evaluate(p)
			}
		case "sites":
			// Cluster-size scaling: ×1 to ×16 sites (8 → 128 with default
			// -sites), the item space growing with the cluster (16 items
			// per site, which keeps conflict clustering — and with it the
			// hybrid engine's fallback rate — low at every scale), the
			// aggregate load rate growing with the cluster
			// (per-cluster inter-arrival shrinks ×m) and the aggregate
			// fault rate held constant (per-site MTTF grows ×m). Unless
			// set explicitly, the steady-state scaling study uses mild
			// churn — MTTF 20s, MTTR 1s at the 8-site baseline — so the
			// fault spacing stays well clear of the commit window at every
			// scale.
			if !setFlags["mttf"] && base.MTTF > 0 {
				base.MTTF = 20 * sim.Second
			}
			if !setFlags["mttr"] && base.MTTR > 0 {
				base.MTTR = sim.Second
			}
			for _, m := range []int{1, 2, 4, 8, 16} {
				p := base
				p.NumSites = base.NumSites * m
				p.NumItems = p.NumSites * 16
				p.MTTF = base.MTTF * sim.Duration(m)
				p.MeanInterarrival = base.MeanInterarrival / sim.Duration(m)
				if p.MeanInterarrival <= 0 {
					p.MeanInterarrival = 1
				}
				fmt.Printf("--- %d sites × %d items ---\n", p.NumSites, p.NumItems)
				evaluate(p)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown sweep %q (want 'mttr', 'mttf' or 'sites')\n", *sweep)
			os.Exit(2)
		}
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func selectBuilders(arg string) ([]churn.Builder, error) {
	all := churn.StandardBuilders()
	if arg == "" || arg == "all" {
		return all, nil
	}
	byLabel := make(map[string]churn.Builder, len(all))
	for _, b := range all {
		byLabel[strings.ToLower(b.Label)] = b
	}
	var out []churn.Builder
	for _, name := range strings.Split(arg, ",") {
		b, ok := byLabel[strings.ToLower(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("unknown protocol %q (want 2PC, 3PC, SkeenQ, QC1 or QC2)", name)
		}
		out = append(out, b)
	}
	return out, nil
}

func selectEngines(arg string) ([]churn.Engine, error) {
	if strings.ToLower(strings.TrimSpace(arg)) == "both" {
		return []churn.Engine{churn.EngineReplay, churn.EngineHybrid}, nil
	}
	e, err := churn.ParseEngine(arg)
	if err != nil {
		return nil, fmt.Errorf("%v (or 'both')", err)
	}
	return []churn.Engine{e}, nil
}

func selectStrategies(arg string) ([]voting.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(arg)) {
	case "both":
		return []voting.Strategy{voting.StrategyQuorum, voting.StrategyMissingWrites}, nil
	case "all":
		return []voting.Strategy{voting.StrategyQuorum, voting.StrategyMissingWrites, voting.StrategyDynamic}, nil
	}
	s, err := voting.ParseStrategy(arg)
	if err != nil {
		return nil, fmt.Errorf("%v (or 'both' / 'all')", err)
	}
	return []voting.Strategy{s}, nil
}

func run(params churn.Params, cfg runConfig) jsonRun {
	opts := churn.Options{Workers: cfg.workers}
	start := time.Now()
	if cfg.progress {
		opts.Progress = func(done, total int) {
			elapsed := time.Since(start)
			eta := "?"
			if done > 0 {
				eta = (elapsed / time.Duration(done) * time.Duration(total-done)).Round(time.Second).String()
			}
			fmt.Fprintf(os.Stderr, "\r%d/%d runs (%3.0f%%, ETA %s)   ", done, total, 100*float64(done)/float64(total), eta)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	results, err := churn.StudyParallel(params, cfg.runs, cfg.seed, cfg.builders, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	trials := cfg.runs * len(cfg.builders)
	fmt.Printf("churn: %d sites, %d items ×%d copies, %d written, strategy %v, engine %v, arrival %v, MTTF %v, MTTR %v",
		params.NumSites, params.NumItems, params.CopiesPerItem, params.WritesPerTxn,
		params.Strategy, params.Engine, time.Duration(params.MeanInterarrival), time.Duration(params.MTTF), time.Duration(params.MTTR))
	if params.PartitionMTBF > 0 {
		fmt.Printf(", partitions every %v for %v", time.Duration(params.PartitionMTBF), time.Duration(params.PartitionMTTR))
	}
	fmt.Printf("\nhorizon %v ×%d runs (%.1f runs/s, %.1f trials/s)\n",
		time.Duration(params.Horizon), cfg.runs, float64(cfg.runs)/elapsed.Seconds(), float64(trials)/elapsed.Seconds())
	if cfg.ci {
		fmt.Print(churn.FormatTableCI(results))
	} else {
		fmt.Print(churn.FormatTable(results))
	}
	fmt.Println()

	rec := jsonRun{
		Params:       params,
		Strategy:     params.Strategy.String(),
		Engine:       params.Engine.String(),
		MTTFMs:       float64(params.MTTF) / 1e6,
		MTTRMs:       float64(params.MTTR) / 1e6,
		Runs:         cfg.runs,
		Seed:         cfg.seed,
		Workers:      cfg.workers,
		ElapsedSec:   elapsed.Seconds(),
		RunsPerSec:   float64(cfg.runs) / elapsed.Seconds(),
		TrialsPerSec: float64(trials) / elapsed.Seconds(),
	}
	for _, r := range results {
		clo, chi := r.CommittedCI()
		tlo, thi := r.TerminatedCI()
		rec.Protocols = append(rec.Protocols, jsonProtocol{
			Label:           r.Label,
			Runs:            r.Runs,
			Submitted:       r.Counts.Submitted,
			CommittedFrac:   r.Counts.CommittedFraction(),
			AbortedFrac:     r.Counts.AbortedFraction(),
			BlockedFrac:     r.Counts.BlockedFraction(),
			BlockedShare:    r.Counts.BlockedTimeShare(),
			ReadAvail:       r.Counts.ReadAvailability(),
			WriteAvail:      r.Counts.WriteAvailability(),
			P50Ms:           float64(r.LatencyPercentile(50)) / 1e6,
			P95Ms:           float64(r.LatencyPercentile(95)) / 1e6,
			P99Ms:           float64(r.LatencyPercentile(99)) / 1e6,
			Violations:      r.Violations,
			Counts:          r.Counts,
			CommittedCILo:   clo,
			CommittedCIHi:   chi,
			TerminatedCILo:  tlo,
			TerminatedCIHi:  thi,
			TerminatedCount: r.Counts.Committed + r.Counts.Aborted,
		})
	}
	return rec
}
