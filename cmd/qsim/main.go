// Command qsim runs one commit scenario under a chosen protocol with
// scripted failures, then prints the outcome, the per-partition availability
// table and (optionally) the full message ladder.
//
//	qsim -protocol QC1
//	qsim -protocol SkeenQ -crash 1 -crashat 15ms -partition "1,2,3|4,5|6,7,8" -partat 15ms
//	qsim -protocol QC2 -loss 0.1 -ladder
//	qsim -protocol QC1 -crash 1 -crashat 15ms -restart "1:300ms"    crash then recover
//	qsim -protocol 2PC -partition "1,2,3,4|5,6,7,8" -partat 15ms -heal 300ms
//	qsim -protocol QC1 -strategy missing-writes -crash 2 -crashat 15ms
//	                                            adaptive data access: the run
//	                                            reports per-item modes and
//	                                            missing-write carriers
//	qsim -protocol QC1 -strategy dynamic -crash 2 -crashat 15ms
//	                                            dynamic vote reassignment: the
//	                                            run reports per-item vote-table
//	                                            epochs and the surviving bases
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"qcommit"
)

func main() {
	protocol := flag.String("protocol", "QC1", "2PC, 3PC, SkeenQ, QC1 or QC2")
	strategy := flag.String("strategy", "quorum", "data-access strategy: 'quorum', 'missing-writes' (alias 'mw'), or 'dynamic' (alias 'dv')")
	seed := flag.Int64("seed", 1, "simulation seed")
	loss := flag.Float64("loss", 0, "message loss probability")
	dup := flag.Float64("dup", 0, "message duplication probability")
	crash := flag.String("crash", "", "comma-separated sites to crash")
	crashAt := flag.Duration("crashat", 15*time.Millisecond, "virtual time of the crash")
	partition := flag.String("partition", "", "partition groups, e.g. \"1,2,3|4,5|6,7,8\"")
	partAt := flag.Duration("partat", 15*time.Millisecond, "virtual time of the partition")
	restart := flag.String("restart", "", "scheduled recoveries as site:time pairs, e.g. \"1:300ms,2:400ms\"")
	heal := flag.Duration("heal", 0, "virtual time to heal the partition (0 = never)")
	ladder := flag.Bool("ladder", false, "print the full message ladder")
	flag.Parse()

	strat, err := qcommit.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	c, err := qcommit.NewCluster(qcommit.PaperItems(), qcommit.Options{
		Protocol: qcommit.Protocol(*protocol),
		Strategy: strat,
		Seed:     *seed,
		LossProb: *loss,
		DupProb:  *dup,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	txn := c.Submit(1, map[qcommit.ItemID]int64{"x": 1, "y": 2})

	for _, s := range parseSites(*crash) {
		c.CrashAt(qcommit.Time(crashAt.Nanoseconds()), s)
	}
	if groups := parseGroups(*partition); groups != nil {
		c.PartitionAt(qcommit.Time(partAt.Nanoseconds()), groups...)
	}
	// Each recovery (restart or heal) is followed by a Kick at the same
	// virtual instant, so a transaction the failure blocked re-enters the
	// termination protocol with a fresh round budget.
	for _, r := range parseRestarts(*restart) {
		c.RestartAt(r.at, r.site)
		c.KickAt(r.at, txn)
	}
	if *heal > 0 {
		healAt := qcommit.Time(heal.Nanoseconds())
		c.HealAt(healAt)
		c.KickAt(healAt, txn)
	}

	end := c.Run()

	fmt.Printf("protocol: %s  strategy: %v  seed: %d  virtual end: %v\n", c.Protocol(), c.Strategy(), *seed, end)
	fmt.Printf("outcome: %v\n", c.Outcome(txn))
	fmt.Printf("per-site: %v\n", c.Outcomes(txn))
	if c.Strategy() == qcommit.StrategyMissingWrites {
		demote, restore := c.ModeTransitions()
		fmt.Printf("access modes (demotions %d, restorations %d):\n", demote, restore)
		for _, item := range c.Items() {
			fmt.Printf("  %s: %v", item, c.ItemMode(item))
			if missing := c.MissingWritesAt(item); len(missing) > 0 {
				fmt.Printf("  missing at %v", missing)
			}
			fmt.Println()
		}
	}
	if c.Strategy() == qcommit.StrategyDynamic {
		reassigns, restores := c.VoteTransitions()
		fmt.Printf("vote tables (reassignments %d, restorations %d):\n", reassigns, restores)
		for _, item := range c.Items() {
			fmt.Printf("  %s: epoch %d votes %s\n", item, c.VoteEpoch(item), formatVotes(c.VotesNow(item)))
		}
	}
	st := c.NetworkStats()
	fmt.Printf("network: sent=%d delivered=%d lost=%d cut=%d bytes=%d\n\n",
		st.Sent, st.Delivered, st.DroppedLoss, st.DroppedPartition, st.Bytes)
	fmt.Print(c.Availability(txn).String())
	if v := c.Violations(); len(v) > 0 {
		fmt.Println("\nATOMICITY VIOLATIONS:")
		for _, s := range v {
			fmt.Println("  " + s)
		}
	}
	if *ladder {
		fmt.Println("\nmessage ladder:")
		fmt.Print(c.Ladder())
	}
}

func formatVotes(copies []qcommit.VoteCopy) string {
	if len(copies) == 0 {
		return "(none)"
	}
	var b strings.Builder
	for i, cp := range copies {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", cp.Site, cp.Votes)
	}
	return b.String()
}

func parseSites(s string) []qcommit.SiteID {
	if s == "" {
		return nil
	}
	var out []qcommit.SiteID
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad site %q\n", f)
			os.Exit(2)
		}
		out = append(out, qcommit.SiteID(n))
	}
	return out
}

type restartSpec struct {
	site qcommit.SiteID
	at   qcommit.Time
}

func parseRestarts(s string) []restartSpec {
	if s == "" {
		return nil
	}
	var out []restartSpec
	for _, pair := range strings.Split(s, ",") {
		site, at, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "bad restart %q (want site:time, e.g. 1:300ms)\n", pair)
			os.Exit(2)
		}
		n, err := strconv.Atoi(strings.TrimSpace(site))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad restart site %q\n", site)
			os.Exit(2)
		}
		d, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad restart time %q: %v\n", at, err)
			os.Exit(2)
		}
		out = append(out, restartSpec{site: qcommit.SiteID(n), at: qcommit.Time(d.Nanoseconds())})
	}
	return out
}

func parseGroups(s string) [][]qcommit.SiteID {
	if s == "" {
		return nil
	}
	var out [][]qcommit.SiteID
	for _, g := range strings.Split(s, "|") {
		out = append(out, parseSites(g))
	}
	return out
}
