// Command figures regenerates the paper's figures and examples as text:
//
//	figures -fig 1      two-phase commit message ladder (Fig. 1)
//	figures -fig 2      three-phase commit message ladder (Fig. 2)
//	figures -fig 3      Example 1 scenario under Skeen's quorum protocol (Fig. 3)
//	figures -fig 4      partition states and concurrency sets table (Fig. 4)
//	figures -fig 5      termination protocol 1 walkthrough (Fig. 5)
//	figures -fig 6      participant state-transition relation (Fig. 6)
//	figures -fig 7      two-coordinator counterexample, Example 3 (Fig. 7)
//	figures -fig 8      termination protocol 2 walkthrough (Fig. 8)
//	figures -fig 9      quorum-based commit protocol ladder, early commit (Fig. 9)
//	figures -example 1  Example 1 (alias of -fig 3)
//	figures -example 2  Example 2: 3PC terminates inconsistently
//	figures -example 3  Example 3 (alias of -fig 7)
//	figures -example 4  Example 4: TP1 restores availability in G1 and G3
//	figures -mc         claim C1 Monte Carlo availability table (parallel)
//	figures -all        everything in order
package main

import (
	"flag"
	"fmt"
	"os"

	"qcommit"
	"qcommit/internal/avail"
	"qcommit/internal/core"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-9)")
	example := flag.Int("example", 0, "example number (1-4)")
	mc := flag.Bool("mc", false, "claim C1 Monte Carlo availability table")
	trials := flag.Int("trials", 300, "Monte Carlo trials for -mc")
	workers := flag.Int("workers", 0, "Monte Carlo worker goroutines for -mc (0 = GOMAXPROCS)")
	all := flag.Bool("all", false, "print every figure and example")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	switch {
	case *all:
		for f := 1; f <= 9; f++ {
			render(f, 0, *seed)
		}
		render(0, 2, *seed)
		render(0, 4, *seed)
		monteCarloTable(*trials, *seed, *workers)
	case *mc:
		monteCarloTable(*trials, *seed, *workers)
	case *fig != 0:
		render(*fig, 0, *seed)
	case *example != 0:
		render(0, *example, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// monteCarloTable prints the claim C1 comparison (the paper's availability
// argument in aggregate) using the parallel Monte Carlo sweep on the
// analytic engine — the quorum-arithmetic fast path that the differential
// tests pin count-for-count to full engine replay.
func monteCarloTable(trials int, seed int64, workers int) {
	header(fmt.Sprintf("Claim C1 — Monte Carlo availability comparison (%d trials)", trials))
	results, err := avail.MonteCarloParallel(avail.DefaultScenarioParams(), trials, seed,
		avail.StandardBuilders(), avail.MCOptions{Workers: workers, Engine: avail.EngineAnalytic})
	check(err)
	fmt.Print(avail.FormatMCTableCI(results))
	fmt.Println()
}

func render(fig, example int, seed int64) {
	switch {
	case fig == 1:
		header("Fig. 1 — the two-phase commit protocol (message ladder, failure-free)")
		ladder(qcommit.Proto2PC, seed)
	case fig == 2:
		header("Fig. 2 — the three-phase commit protocol")
		ladder(qcommit.Proto3PC, seed)
	case fig == 3, example == 1:
		header("Fig. 3 / Example 1 — Skeen's quorum protocol blocks in every partition")
		example1(qcommit.ProtoSkeenQuorum, seed)
	case fig == 4:
		header("Fig. 4 — partition states and concurrency sets")
		fmt.Print(core.Fig4Table())
	case fig == 5:
		header("Fig. 5 — termination protocol 1 on the Example 1 scenario")
		termination(qcommit.ProtoQC1, seed)
	case fig == 6:
		header("Fig. 6 — participant state-transition diagram")
		fmt.Print(core.Fig6Table())
	case fig == 7, example == 3:
		header("Fig. 7 / Example 3 — two concurrent termination coordinators")
		example3(seed)
	case fig == 8:
		header("Fig. 8 — termination protocol 2 on the Example 1 scenario")
		termination(qcommit.ProtoQC2, seed)
	case fig == 9:
		header("Fig. 9 — the quorum-based commit protocol (CP2: early commit)")
		ladder(qcommit.ProtoQC2, seed)
	case example == 2:
		header("Example 2 — 3PC's termination protocol splits the decision")
		example1(qcommit.Proto3PC, seed)
	case example == 4:
		header("Example 4 — termination protocol 1 restores availability")
		example1(qcommit.ProtoQC1, seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure/example\n")
		os.Exit(2)
	}
	fmt.Println()
}

func header(s string) {
	fmt.Println(s)
	for range s {
		fmt.Print("=")
	}
	fmt.Println()
}

func ladder(proto qcommit.Protocol, seed int64) {
	// A compact 4-site layout keeps the diagram readable.
	items := []qcommit.ReplicatedItem{
		{Name: "x", Sites: []qcommit.SiteID{1, 2, 3, 4}, R: 2, W: 3},
	}
	c, err := qcommit.NewCluster(items, qcommit.Options{Protocol: proto, Seed: seed})
	check(err)
	txn := c.Submit(1, map[qcommit.ItemID]int64{"x": 1})
	c.Run()
	fmt.Printf("protocol %s, outcome: %v\n\n", proto, c.Outcome(txn))
	fmt.Print(c.SequenceDiagram())
}

func example1(proto qcommit.Protocol, seed int64) {
	c, txn, err := qcommit.SetupExample1(proto, seed)
	check(err)
	c.Run()
	fmt.Printf("scenario: coordinator site1 crashed, site5 in PC, partition G1={1,2,3} G2={4,5} G3={6,7,8}\n\n")
	fmt.Print(c.Availability(txn).String())
	if v := c.Violations(); len(v) > 0 {
		fmt.Println("\nATOMICITY VIOLATIONS (expected for 3PC under partitioning):")
		for _, s := range v {
			fmt.Println("  " + s)
		}
	}
}

func termination(proto qcommit.Protocol, seed int64) {
	c, txn, err := qcommit.SetupExample1(proto, seed)
	check(err)
	c.Run()
	fmt.Printf("termination under %s:\n\n", proto)
	fmt.Print(c.Ladder())
	fmt.Println()
	fmt.Print(c.Availability(txn).String())
}

func example3(seed int64) {
	for _, buggy := range []bool{false, true} {
		label := "correct rule (PC ignores PREPARE-TO-ABORT, PA ignores PREPARE-TO-COMMIT)"
		if buggy {
			label = "BUGGY rule (participants answer both buffers) — seed 2 shows the violation"
			seed = 2
		}
		fmt.Printf("--- %s ---\n", label)
		c, txn, err := qcommit.SetupExample3(buggy, seed)
		check(err)
		c.Run()
		fmt.Printf("outcomes: %v\n", c.Outcomes(txn))
		if v := c.Violations(); len(v) > 0 {
			for _, s := range v {
				fmt.Println("VIOLATION: " + s)
			}
		} else {
			fmt.Println("no violation")
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
