package qcommit_test

import (
	"fmt"

	"qcommit"
)

// The basic lifecycle: build a replicated cluster, commit a transaction,
// read through the voting layer.
func ExampleNewCluster() {
	cluster, err := qcommit.NewCluster([]qcommit.ReplicatedItem{
		{Name: "x", Sites: []qcommit.SiteID{1, 2, 3, 4}, R: 2, W: 3},
	}, qcommit.Options{Protocol: qcommit.ProtoQC1, Seed: 1})
	if err != nil {
		panic(err)
	}
	txn := cluster.Submit(1, map[qcommit.ItemID]int64{"x": 42})
	cluster.Run()
	fmt.Println(cluster.Outcome(txn))
	v, _ := cluster.QuorumRead(2, "x")
	fmt.Println(v)
	// Output:
	// committed
	// 42
}

// Reproducing the paper's Example 4: the quorum-based termination protocol
// aborts the interrupted transaction in the partitions that hold replica
// quorums, restoring access to their data.
func ExampleSetupExample1() {
	cluster, txn, err := qcommit.SetupExample1(qcommit.ProtoQC1, 1)
	if err != nil {
		panic(err)
	}
	cluster.Run()
	fmt.Println("G1 (sites 2,3):", cluster.OutcomeAt(2, txn))
	fmt.Println("G2 (sites 4,5):", cluster.OutcomeAt(4, txn))
	fmt.Println("G3 (sites 6-8):", cluster.OutcomeAt(6, txn))
	fmt.Println("x readable in G1:", cluster.CanRead(2, "x"))
	fmt.Println("y writable in G3:", cluster.CanWrite(6, "y"))
	// Output:
	// G1 (sites 2,3): aborted
	// G2 (sites 4,5): blocked
	// G3 (sites 6-8): aborted
	// x readable in G1: true
	// y writable in G3: true
}

// Steady-state availability under churn: sites fail and repair while a
// transaction stream runs; every protocol sees the identical timeline. The
// study is deterministic in its seed, terminates most of the stream despite
// ~17% per-site downtime, and stays safe (zero atomicity violations).
func ExampleChurnStudy() {
	params := qcommit.DefaultChurnParams()
	params.Horizon = 2 * qcommit.Second
	results, err := qcommit.ChurnStudy(params, 4, 1, qcommit.ChurnOptions{})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s safe=%v terminated-most=%v\n",
			r.Label, r.Violations == 0, r.Counts.TerminatedFraction() > 0.9)
	}
	// Output:
	// 2PC safe=true terminated-most=true
	// 3PC safe=true terminated-most=true
	// SkeenQ safe=true terminated-most=true
	// QC1 safe=true terminated-most=true
	// QC2 safe=true terminated-most=true
}

// Classic 2PC blocking: every participant voted yes, the coordinator
// crashed before distributing the decision, and cooperative termination
// finds nobody who knows the outcome.
func ExampleCluster_SetupInterrupted() {
	cluster, err := qcommit.NewCluster(qcommit.PaperItems(), qcommit.Options{
		Protocol: qcommit.Proto2PC, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	txn := cluster.SetupInterrupted(1, map[qcommit.ItemID]int64{"x": 1, "y": 2},
		map[qcommit.SiteID]qcommit.State{
			1: qcommit.StateWait, 2: qcommit.StateWait, 3: qcommit.StateWait,
			4: qcommit.StateWait, 5: qcommit.StateWait, 6: qcommit.StateWait,
			7: qcommit.StateWait, 8: qcommit.StateWait,
		})
	cluster.Crash(1)
	cluster.Run()
	fmt.Println(cluster.Outcome(txn))
	// Output:
	// blocked
}
