package qcommit

import (
	"testing"
	"time"
)

func liveItems() []ReplicatedItem {
	return []ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 10},
		{Name: "y", Sites: []SiteID{2, 3, 4, 5}, R: 2, W: 3, Initial: 20},
	}
}

func TestLiveClusterPublicAPI(t *testing.T) {
	c, err := NewLiveCluster(liveItems(), LiveOptions{
		Protocol:    ProtoQC2,
		Seed:        1,
		TimeoutBase: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	txn := c.Submit(1, map[ItemID]int64{"x": 11, "y": 22})
	if got := c.WaitOutcome(txn, 5*time.Second); got != OutcomeCommitted {
		t.Fatalf("outcome = %v", got)
	}
	if c.Violated(txn) {
		t.Fatal("violated")
	}
	if v, _, err := c.CopyAt(2, "x"); err != nil || v != 11 {
		t.Errorf("x at site2 = %d, %v", v, err)
	}
	if got := c.OutcomeAt(3, txn); got != OutcomeCommitted {
		t.Errorf("site3 = %v", got)
	}

	// Partition: a cross-partition transaction must not commit.
	c.Partition([]SiteID{1, 2}, []SiteID{3, 4, 5})
	txn2 := c.Submit(1, map[ItemID]int64{"x": 99})
	if got := c.WaitOutcome(txn2, 5*time.Second); got == OutcomeCommitted {
		t.Error("committed without a full vote across the partition")
	}
	c.Heal()

	// Crash + restart: the site catches up.
	c.Crash(5)
	c.Restart(5)
	txn3 := c.Submit(2, map[ItemID]int64{"y": 33})
	if got := c.WaitOutcome(txn3, 5*time.Second); got != OutcomeCommitted {
		t.Fatalf("post-restart txn = %v", got)
	}
}

func TestLiveClusterValidation(t *testing.T) {
	if _, err := NewLiveCluster(nil, LiveOptions{}); err == nil {
		t.Error("empty items accepted")
	}
	if _, err := NewLiveCluster([]ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2}, Votes: []int{1}},
	}, LiveOptions{}); err == nil {
		t.Error("votes length mismatch accepted")
	}
	if _, err := NewLiveCluster(liveItems(), LiveOptions{Protocol: "bogus"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	// A dropped ParseStrategy error yields StrategyInvalid; constructors
	// must reject it rather than fall back to quorum silently.
	//qlint:allow droppederr the test deliberately drops the error to obtain the invalid zero value it checks constructors against
	bad, _ := ParseStrategy("bogus")
	if _, err := NewLiveCluster(liveItems(), LiveOptions{Strategy: bad}); err == nil {
		t.Error("invalid strategy accepted by NewLiveCluster")
	}
	// Delay bounds: negative durations would reach time.AfterFunc, and an
	// inverted window would silently collapse to its lower bound.
	if _, err := NewLiveCluster(liveItems(), LiveOptions{MinDelay: -time.Millisecond}); err == nil {
		t.Error("negative MinDelay accepted")
	}
	if _, err := NewLiveCluster(liveItems(), LiveOptions{MaxDelay: -time.Millisecond}); err == nil {
		t.Error("negative MaxDelay accepted")
	}
	if _, err := NewLiveCluster(liveItems(), LiveOptions{MinDelay: 2 * time.Millisecond, MaxDelay: time.Millisecond}); err == nil {
		t.Error("MaxDelay < MinDelay accepted")
	}
	if _, err := NewLiveCluster(liveItems(), LiveOptions{Transport: "carrier-pigeon"}); err == nil {
		t.Error("unknown transport accepted")
	}
}

// TestLiveClusterTCPTransport runs the public live API over real loopback
// sockets: same protocols, same assignment, every frame through the stream
// codec and the kernel.
func TestLiveClusterTCPTransport(t *testing.T) {
	c, err := NewLiveCluster(liveItems(), LiveOptions{
		Protocol:  ProtoQC1,
		Transport: "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	txn := c.Submit(1, map[ItemID]int64{"x": 11, "y": 22})
	if got := c.WaitOutcome(txn, 10*time.Second); got != OutcomeCommitted {
		t.Fatalf("outcome over tcp = %v", got)
	}
	if v, _, err := c.CopyAt(3, "y"); err != nil || v != 22 {
		t.Errorf("y at site3 = %d, %v", v, err)
	}
}
