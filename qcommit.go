// Package qcommit is a library implementation of the quorum-based commit and
// termination protocols of Huang & Li, "A Quorum-based Commit and
// Termination Protocol for Distributed Database Systems" (ICDE 1988),
// together with the baselines the paper compares against: two-phase commit
// with cooperative termination, Skeen's three-phase commit with its
// site-failure termination protocol, and Skeen's quorum-based commit
// protocol.
//
// The library simulates a replicated distributed database: data items have
// weighted-voting replicas (Gifford quorums r(x)/w(x)), sites keep
// write-ahead logs, lock tables and versioned stores, and transactions
// commit atomically through a pluggable commit+termination protocol. The
// deterministic discrete-event network lets you crash sites, lose messages
// and partition the network at exact points, then measure what the paper
// cares about: which partitions can terminate the transaction and which
// data items remain accessible.
//
// # Quick start
//
//	cluster, err := qcommit.NewCluster([]qcommit.ReplicatedItem{
//		{Name: "x", Sites: []qcommit.SiteID{1, 2, 3, 4}, R: 2, W: 3},
//	}, qcommit.Options{Protocol: qcommit.ProtoQC1, Seed: 1})
//	...
//	txn := cluster.Submit(1, map[qcommit.ItemID]int64{"x": 42})
//	cluster.Run()
//	fmt.Println(cluster.Outcome(txn)) // committed
//
// See the examples directory for partition and failure scenarios.
package qcommit

import (
	"qcommit/internal/avail"
	"qcommit/internal/sim"
	"qcommit/internal/types"
	"qcommit/internal/voting"
)

// Re-exported identifier and result types.
type (
	// SiteID identifies a database site (sites are numbered from 1).
	SiteID = types.SiteID
	// ItemID names a replicated data item.
	ItemID = types.ItemID
	// TxnID identifies a transaction.
	TxnID = types.TxnID
	// State is a participant's local protocol state (q/W/PC/PA/C/A).
	State = types.State
	// Outcome is a transaction's fate at a site or partition.
	Outcome = types.Outcome
	// Writeset is a transaction's ordered list of updates.
	Writeset = types.Writeset
	// Update is one write in a writeset.
	Update = types.Update
	// Duration is virtual time (nanoseconds).
	Duration = sim.Duration
	// Time is a virtual timestamp.
	Time = sim.Time
	// AvailabilityReport is the per-partition, per-item accessibility
	// analysis of a transaction's aftermath.
	AvailabilityReport = avail.Report
)

// Local state constants.
const (
	StateInitial   = types.StateInitial
	StateWait      = types.StateWait
	StatePC        = types.StatePC
	StatePA        = types.StatePA
	StateCommitted = types.StateCommitted
	StateAborted   = types.StateAborted
)

// Outcome constants.
const (
	OutcomeUnknown   = types.OutcomeUnknown
	OutcomeCommitted = types.OutcomeCommitted
	OutcomeAborted   = types.OutcomeAborted
	OutcomeBlocked   = types.OutcomeBlocked
)

// Duration units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Strategy selects the data-access (partition-processing) strategy layered
// over the weighted-voting assignment.
type Strategy = voting.Strategy

// Access strategies.
const (
	// StrategyQuorum is Gifford weighted voting: every read collects r(x)
	// votes and every write w(x) votes, always. The default.
	StrategyQuorum = voting.StrategyQuorum
	// StrategyMissingWrites is Eager & Sevcik's adaptive scheme (ACM TODS
	// 1983, reference [5] of the paper): read-one/write-all while an item
	// has no missing writes, demotion to pessimistic quorum mode when a
	// committed write misses a copy, restoration once stale copies catch up
	// (on heal or restart, via anti-entropy).
	StrategyMissingWrites = voting.StrategyMissingWrites
	// StrategyDynamic is dynamic vote reassignment (Jajodia & Mutchler,
	// SIGMOD 1987; Barbara, Garcia-Molina & Spauster, ACM TODS 1989): after
	// each committed write (and at heal/restart catch-up) the reachable
	// majority of an item's copies installs a new version-numbered vote
	// table in which only the current survivor set holds votes, so quorums
	// are majorities of the survivors. Epoch guards keep a stale minority
	// from ever forming a quorum; Cluster.VoteEpoch and VotesNow expose the
	// tables.
	StrategyDynamic = voting.StrategyDynamic
)

// AllStrategies lists the supported access strategies in comparison order.
func AllStrategies() []Strategy {
	return []Strategy{StrategyQuorum, StrategyMissingWrites, StrategyDynamic}
}

// ParseStrategy maps a command-line spelling ("quorum", "missing-writes"/
// "mw", "dynamic"/"dv"; the empty string means the StrategyQuorum default)
// onto a Strategy. Unrecognized spellings return a non-nil error together
// with voting.StrategyInvalid — never a usable strategy — so a dropped
// error cannot silently select the quorum fallback.
func ParseStrategy(s string) (Strategy, error) { return voting.ParseStrategy(s) }

// VoteCopy is one entry of a vote table: a site and its current weight.
type VoteCopy = voting.Copy

// Mode is an item's current missing-writes operating mode.
type Mode = voting.Mode

// Item access modes.
const (
	// ModeOptimistic: read any single copy, write all copies. Requires no
	// missing writes (StrategyMissingWrites only).
	ModeOptimistic = voting.Optimistic
	// ModePessimistic: quorum reads and writes with the configured
	// r(x)/w(x). Items under StrategyQuorum are always in this mode.
	ModePessimistic = voting.Pessimistic
)

// Protocol selects the commit + termination protocol family.
type Protocol string

// Supported protocols.
const (
	// Proto2PC is the two-phase commit protocol (Fig. 1) with cooperative
	// termination. Blocking under coordinator failure.
	Proto2PC Protocol = "2PC"
	// Proto3PC is Skeen's three-phase commit (Fig. 2) with the site-failure
	// termination protocol. Nonblocking for site failures but INCONSISTENT
	// under network partitioning (the paper's Example 2); provided as a
	// baseline only.
	Proto3PC Protocol = "3PC"
	// ProtoSkeenQuorum is Skeen's quorum-based commit protocol with
	// site-vote quorums Vc/Va (reference [16] of the paper).
	ProtoSkeenQuorum Protocol = "SkeenQ"
	// ProtoQC1 is the paper's commit protocol 1 + termination protocol 1:
	// commit side counts w(x) replica votes for every written item, abort
	// side counts r(x) votes for some written item.
	ProtoQC1 Protocol = "QC1"
	// ProtoQC2 is the paper's commit protocol 2 + termination protocol 2,
	// with the r/w roles swapped; commits faster than QC1.
	ProtoQC2 Protocol = "QC2"
)

// AllProtocols lists every supported protocol in comparison order.
func AllProtocols() []Protocol {
	return []Protocol{Proto2PC, Proto3PC, ProtoSkeenQuorum, ProtoQC1, ProtoQC2}
}
