package qcommit

import (
	"qcommit/internal/churn"
)

// Re-exported churn-study types. A churn study measures steady-state
// availability: sites fail and repair (exponential MTTF/MTTR), partitions
// form and heal, and a continuous transaction stream experiences blocking
// as lost time rather than a one-shot verdict. See internal/churn for the
// timeline model and determinism guarantee.
type (
	// ChurnParams parameterizes a steady-state availability study.
	ChurnParams = churn.Params
	// ChurnOptions tunes the study's worker pool and progress reporting.
	ChurnOptions = churn.Options
	// ChurnResult is one protocol column of a study.
	ChurnResult = churn.Result
	// ChurnCounts aggregates what the transaction stream experienced.
	ChurnCounts = churn.Counts
	// ChurnEngine selects how a study evaluates its runs: full replay or
	// the hybrid analytic engine (identical transaction fates, far faster
	// on large clusters).
	ChurnEngine = churn.Engine
	// ChurnPlacementError reports Params whose replica-placement geometry
	// is impossible (more copies than sites, more writes than items, ...).
	ChurnPlacementError = churn.PlacementError
)

// The churn engines, settable via ChurnParams.Engine.
const (
	// ChurnEngineReplay simulates every transaction through the full
	// protocol stack — the determinism oracle.
	ChurnEngineReplay = churn.EngineReplay
	// ChurnEngineHybrid decides provably-quiet transactions analytically
	// and replays only those that interact with faults, repairs, or each
	// other. Fates and violation counts are bit-identical to replay;
	// availability probes and latencies are documented approximations (see
	// internal/churn/hybrid.go).
	ChurnEngineHybrid = churn.EngineHybrid
)

// DefaultChurnParams returns the paper-scale configuration with moderate
// site churn (8 sites, 4 items ×4 copies, MTTF 2s, MTTR 400ms, 5s horizon)
// and partition churn disabled.
func DefaultChurnParams() ChurnParams { return churn.DefaultParams() }

// ChurnStudy evaluates runs independent churn runs under all five standard
// protocols (2PC, 3PC, SkeenQ, QC1, QC2) and aggregates per-protocol
// steady-state metrics: committed/aborted/blocked fractions,
// time-to-termination percentiles, blocked-time share, read/write
// availability under params.Strategy (any of the three access strategies),
// mode/reassignment churn, and safety violations. Results are deterministic
// in (params, runs, seed) for any worker count.
func ChurnStudy(params ChurnParams, runs int, seed int64, opts ChurnOptions) ([]ChurnResult, error) {
	return churn.StudyParallel(params, runs, seed, churn.StandardBuilders(), opts)
}

// FormatChurnTable renders churn study results as an aligned text table.
func FormatChurnTable(results []ChurnResult) string { return churn.FormatTable(results) }

// FormatChurnTableCI renders churn study results with 95% Wilson intervals
// on the committed and terminated fractions.
func FormatChurnTableCI(results []ChurnResult) string { return churn.FormatTableCI(results) }
