package qcommit

import (
	"fmt"
	"sort"

	"qcommit/internal/avail"
	"qcommit/internal/core"
	"qcommit/internal/engine"
	"qcommit/internal/msg"
	"qcommit/internal/protocol"
	"qcommit/internal/simnet"
	"qcommit/internal/skeenq"
	"qcommit/internal/threepc"
	"qcommit/internal/trace"
	"qcommit/internal/twopc"
	"qcommit/internal/voting"
)

// ReplicatedItem declares one data item and its weighted-voting replicas.
type ReplicatedItem struct {
	// Name is the item's identifier.
	Name ItemID
	// Sites hold one copy each. With Votes nil every copy weighs 1 vote;
	// otherwise Votes[i] is the weight of the copy at Sites[i].
	Sites []SiteID
	Votes []int
	// R and W are the read and write quorums, which must satisfy
	// r+w > total votes and w > total/2. Zero values select majority
	// quorums.
	R, W int
	// Initial is the starting value of every copy (version 1).
	Initial int64
}

// Options configures a cluster.
type Options struct {
	// Protocol selects the commit+termination protocol. Default ProtoQC1.
	Protocol Protocol
	// Strategy selects the data-access strategy: StrategyQuorum (default)
	// or StrategyMissingWrites (adaptive read-one/write-all with demotion
	// to quorum mode while copies carry missing writes).
	Strategy Strategy
	// Seed drives all randomness (message delays, loss) deterministically.
	Seed int64
	// MinDelay/MaxDelay bound message propagation delay. MaxDelay is the
	// paper's T (timeout base). Defaults: 1ms/10ms.
	MinDelay, MaxDelay Duration
	// LossProb is the independent probability a message is lost.
	LossProb float64
	// DupProb is the probability a message is duplicated.
	DupProb float64
	// SkeenVc and SkeenVa are the site-vote quorums for ProtoSkeenQuorum
	// (one vote per site). Zero values select Vc = majority, Va = V+1-Vc.
	SkeenVc, SkeenVa int
	// MaxTerminationRounds caps termination retries before a partition
	// resigns to blocking. Default 3.
	MaxTerminationRounds int
	// ExtraSites adds sites that hold no copies (pure coordinators).
	ExtraSites []SiteID
	// DisableTrace turns off event recording (faster Monte Carlo runs).
	DisableTrace bool
	// WALDir, when set, persists each site's write-ahead log to
	// WALDir/site<N>.wal. Rebuilding a cluster over the same directory
	// resumes it: committed state is restored from disk and unterminated
	// transactions rejoin the termination protocol. Call Close when done.
	WALDir string
}

// Cluster is a simulated replicated database running one protocol.
type Cluster struct {
	eng  *engine.Cluster
	opts Options
}

// NewCluster validates the replica declarations and builds the cluster.
func NewCluster(items []ReplicatedItem, opts Options) (*Cluster, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("qcommit: at least one replicated item is required")
	}
	if !opts.Strategy.Valid() {
		return nil, fmt.Errorf("qcommit: invalid Options.Strategy %v", opts.Strategy)
	}
	configs := make([]voting.ItemConfig, 0, len(items))
	siteSet := make(map[SiteID]bool)
	for _, it := range items {
		if len(it.Votes) != 0 && len(it.Votes) != len(it.Sites) {
			return nil, fmt.Errorf("qcommit: item %q: Votes length %d != Sites length %d", it.Name, len(it.Votes), len(it.Sites))
		}
		copies := make([]voting.Copy, len(it.Sites))
		total := 0
		for i, s := range it.Sites {
			v := 1
			if len(it.Votes) > 0 {
				v = it.Votes[i]
			}
			copies[i] = voting.Copy{Site: s, Votes: v}
			total += v
			siteSet[s] = true
		}
		r, w := it.R, it.W
		if r == 0 && w == 0 {
			w = total/2 + 1
			r = total + 1 - w
		}
		configs = append(configs, voting.ItemConfig{Item: it.Name, Copies: copies, R: r, W: w})
	}
	asgn, err := voting.NewAssignment(configs...)
	if err != nil {
		return nil, err
	}

	for _, s := range opts.ExtraSites {
		siteSet[s] = true
	}
	sites := make([]SiteID, 0, len(siteSet))
	for s := range siteSet {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	spec, err := buildSpec(opts, sites)
	if err != nil {
		return nil, err
	}

	netCfg := simnet.Config{
		MinDelay: opts.MinDelay,
		MaxDelay: opts.MaxDelay,
		LossProb: opts.LossProb,
		DupProb:  opts.DupProb,
		Codec:    true,
	}
	if netCfg.MinDelay == 0 && netCfg.MaxDelay == 0 {
		netCfg.MinDelay = 1 * Millisecond
		netCfg.MaxDelay = 10 * Millisecond
	}
	rec := trace.NewRecorder()
	if opts.DisableTrace {
		rec.Disable()
	}
	initials := make(map[ItemID]int64, len(items))
	for _, it := range items {
		initials[it.Name] = it.Initial
	}
	eng := engine.New(engine.Config{
		Seed:                 opts.Seed,
		Net:                  netCfg,
		Assignment:           asgn,
		Strategy:             opts.Strategy,
		Spec:                 spec,
		MaxTerminationRounds: opts.MaxTerminationRounds,
		ExtraSites:           opts.ExtraSites,
		Recorder:             rec,
		WALDir:               opts.WALDir,
		InitialValues:        initials,
	})
	return &Cluster{eng: eng, opts: opts}, nil
}

func buildSpec(opts Options, sites []SiteID) (protocol.Spec, error) {
	switch opts.Protocol {
	case Proto2PC:
		return twopc.Spec{}, nil
	case Proto3PC:
		return threepc.Spec{}, nil
	case ProtoSkeenQuorum:
		vc, va := opts.SkeenVc, opts.SkeenVa
		if vc == 0 && va == 0 {
			v := len(sites)
			vc = v/2 + 1
			va = v + 1 - vc
		}
		spec := skeenq.Uniform(sites, vc, va)
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return spec, nil
	case ProtoQC2:
		return core.Spec{Variant: core.Protocol2}, nil
	case ProtoQC1, "":
		return core.Spec{Variant: core.Protocol1}, nil
	default:
		return nil, fmt.Errorf("qcommit: unknown protocol %q", opts.Protocol)
	}
}

// MustCluster is NewCluster panicking on error, for tests and examples.
func MustCluster(items []ReplicatedItem, opts Options) *Cluster {
	c, err := NewCluster(items, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// Engine exposes the underlying engine cluster for advanced use (scenario
// construction, custom analysis).
func (c *Cluster) Engine() *engine.Cluster { return c.eng }

// Close releases file-backed WALs (no-op for in-memory clusters).
func (c *Cluster) Close() error { return c.eng.Close() }

// Protocol returns the protocol under test.
func (c *Cluster) Protocol() Protocol { return Protocol(c.eng.Spec().Name()) }

// Sites returns all site IDs, ascending.
func (c *Cluster) Sites() []SiteID { return c.eng.Sites() }

// Submit starts a transaction at the coordinator site that writes the given
// values. Call Run (or RunFor) to drive the protocol.
func (c *Cluster) Submit(coord SiteID, writes map[ItemID]int64) TxnID {
	items := make([]ItemID, 0, len(writes))
	for it := range writes {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	ws := make(Writeset, 0, len(items))
	for _, it := range items {
		ws = append(ws, Update{Item: it, Value: writes[it]})
	}
	return c.eng.Begin(coord, ws)
}

// SetupInterrupted constructs a mid-protocol configuration directly (the
// paper's example scenarios): each site in states is a participant frozen in
// the given local state, holding write locks, with a matching WAL.
func (c *Cluster) SetupInterrupted(coord SiteID, writes map[ItemID]int64, states map[SiteID]State) TxnID {
	items := make([]ItemID, 0, len(writes))
	for it := range writes {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	ws := make(Writeset, 0, len(items))
	for _, it := range items {
		ws = append(ws, Update{Item: it, Value: writes[it]})
	}
	return c.eng.SetupInterrupted(coord, ws, states)
}

// Run drives the simulation until quiescence and returns the final virtual
// time.
func (c *Cluster) Run() Time { return c.eng.Run() }

// RunFor advances virtual time by d.
func (c *Cluster) RunFor(d Duration) Time { return c.eng.RunFor(d) }

// Now returns the current virtual time.
func (c *Cluster) Now() Time { return c.eng.Scheduler().Now() }

// Crash takes a site down now (volatile state lost, WAL kept).
func (c *Cluster) Crash(id SiteID) { c.eng.Crash(id) }

// CrashAt schedules a crash.
func (c *Cluster) CrashAt(t Time, id SiteID) { c.eng.CrashAt(t, id) }

// Restart recovers a crashed site from its WAL.
func (c *Cluster) Restart(id SiteID) { c.eng.Restart(id) }

// RestartAt schedules a restart.
func (c *Cluster) RestartAt(t Time, id SiteID) { c.eng.RestartAt(t, id) }

// Partition splits the network into the given groups now; unlisted sites
// form a residual group.
func (c *Cluster) Partition(groups ...[]SiteID) { c.eng.Partition(groups...) }

// PartitionAt schedules a partition.
func (c *Cluster) PartitionAt(t Time, groups ...[]SiteID) { c.eng.PartitionAt(t, groups...) }

// Heal reconnects the network now.
func (c *Cluster) Heal() { c.eng.Heal() }

// HealAt schedules a heal.
func (c *Cluster) HealAt(t Time) { c.eng.HealAt(t) }

// Kick resets termination budgets and retriggers the termination protocol
// for txn (use after healing or recovering sites).
func (c *Cluster) Kick(txn TxnID) { c.eng.Kick(txn) }

// KickAt schedules a Kick (pair with RestartAt/HealAt to script a recovery
// scenario end to end).
func (c *Cluster) KickAt(t Time, txn TxnID) { c.eng.KickAt(t, txn) }

// DropMessages installs a scripted message filter: messages for which drop
// returns true are lost. Pass nil to clear.
func (c *Cluster) DropMessages(drop func(from, to SiteID) bool) {
	if drop == nil {
		c.eng.Network().SetFilter(nil)
		return
	}
	c.eng.Network().SetFilter(func(e msg.Envelope) bool { return drop(e.From, e.To) })
}

// Outcome aggregates txn's fate across all sites: committed if any site
// committed, aborted if any aborted, blocked if any site is still uncertain
// with locks held.
func (c *Cluster) Outcome(txn TxnID) Outcome {
	return c.eng.GroupOutcome(txn, c.eng.Sites())
}

// OutcomeAt returns txn's fate at one site.
func (c *Cluster) OutcomeAt(id SiteID, txn TxnID) Outcome { return c.eng.OutcomeAt(id, txn) }

// Outcomes maps every involved site to its outcome.
func (c *Cluster) Outcomes(txn TxnID) map[SiteID]Outcome { return c.eng.Outcomes(txn) }

// StateOf returns the local protocol state of txn at a site (from the WAL).
func (c *Cluster) StateOf(id SiteID, txn TxnID) State { return c.eng.StateOf(id, txn) }

// Violations returns atomicity violations observed (a correct protocol
// yields none; Proto3PC under partitions is expected to violate).
func (c *Cluster) Violations() []string { return c.eng.Violations() }

// Availability computes the per-partition, per-item accessibility report for
// txn's aftermath (the paper's availability tables).
func (c *Cluster) Availability(txn TxnID) AvailabilityReport { return avail.Analyze(c.eng, txn) }

// Ladder renders the recorded message ladder (Figs. 1, 2, 9 style).
func (c *Cluster) Ladder() string { return c.eng.Recorder().Ladder(nil) }

// MessageLadder renders only message deliveries.
func (c *Cluster) MessageLadder() string { return c.eng.Recorder().Ladder(trace.MessagesOnly) }

// SequenceDiagram renders the recorded run as a column-per-site ASCII
// sequence diagram (the shape of the paper's Figs. 1, 2 and 9).
func (c *Cluster) SequenceDiagram() string {
	return c.eng.Recorder().Diagram(c.eng.Sites(), 0)
}

// NetworkStats returns message counters (sent, delivered, dropped...).
func (c *Cluster) NetworkStats() simnet.Stats { return c.eng.Network().Stats() }

// RefuseVotes makes a site vote no on all future transactions (models an
// I/O-subsystem failure).
func (c *Cluster) RefuseVotes(id SiteID, refuse bool) { c.eng.Site(id).RefuseVotes(refuse) }
