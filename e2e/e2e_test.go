// Package e2e drives real qcommitd processes over real TCP sockets: it
// builds the binary, spawns one process per site, submits transactions
// through the client protocol, and injects the paper's failures for real —
// kill -9 on the coordinator mid-commit and network partitions installed on
// every node.
//
// The headline test is the paper's motivating scenario made literal: with
// the coordinator SIGKILLed in the window after every participant has voted
// and before any decision-phase message escapes, two-phase commit leaves
// every survivor blocked, while the quorum-based protocol QC1 terminates the
// transaction on all of them.
package e2e

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"qcommit/client"
	"qcommit/internal/types"
)

var daemonBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "qcommitd-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	daemonBin = filepath.Join(dir, "qcommitd")
	build := exec.Command("go", "build", "-o", daemonBin, "qcommit/cmd/qcommitd")
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building qcommitd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon is one running qcommitd process.
type daemon struct {
	site   types.SiteID
	cmd    *exec.Cmd
	out    *bytes.Buffer
	exited chan error
}

// cluster is a set of qcommitd processes plus one client per site.
type cluster struct {
	t       *testing.T
	peers   map[types.SiteID]string
	metrics map[types.SiteID]string
	daemons map[types.SiteID]*daemon
	clients map[types.SiteID]*client.Client
}

// startCluster reserves loopback ports, spawns n qcommitd processes running
// proto over items x and y, and connects a client to each. failpointSite (0
// for none) gets -failpoint crash-before-decision.
func startCluster(t *testing.T, n int, proto string, failpointSite types.SiteID) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		peers:   make(map[types.SiteID]string),
		metrics: make(map[types.SiteID]string),
		daemons: make(map[types.SiteID]*daemon),
		clients: make(map[types.SiteID]*client.Client),
	}
	var peersArg string
	for i := 1; i <= n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		c.peers[types.SiteID(i)] = addr
		if peersArg != "" {
			peersArg += ","
		}
		peersArg += fmt.Sprintf("%d=%s", i, addr)
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c.metrics[types.SiteID(i)] = mln.Addr().String()
		mln.Close()
	}
	for i := 1; i <= n; i++ {
		site := types.SiteID(i)
		args := []string{
			"-site", fmt.Sprint(i),
			"-peers", peersArg,
			"-items", "x,y",
			"-protocol", proto,
			"-timeout-base", "100ms",
			"-metrics", c.metrics[site],
		}
		if site == failpointSite {
			args = append(args, "-failpoint", "crash-before-decision")
		}
		d := &daemon{site: site, cmd: exec.Command(daemonBin, args...), out: &bytes.Buffer{}, exited: make(chan error, 1)}
		d.cmd.Stdout = d.out
		d.cmd.Stderr = d.out
		if err := d.cmd.Start(); err != nil {
			t.Fatalf("starting site %d: %v", i, err)
		}
		go func() { d.exited <- d.cmd.Wait() }()
		c.daemons[site] = d
	}
	t.Cleanup(c.stop)
	for i := 1; i <= n; i++ {
		c.clients[types.SiteID(i)] = c.dial(types.SiteID(i))
	}
	return c
}

// dial connects to a site's daemon, retrying while it boots.
func (c *cluster) dial(site types.SiteID) *client.Client {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl, err := client.Dial(c.peers[site], site)
		if err == nil {
			return cl
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("dialing site %d at %s: %v\n%s", site, c.peers[site], err, c.daemons[site].out.Bytes())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (c *cluster) stop() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, d := range c.daemons {
		d.cmd.Process.Kill()
		<-d.exited
	}
}

// awaitKill blocks until site's process has died (the failpoint fired) and
// fails the test if it is still alive after the deadline.
func (c *cluster) awaitKill(site types.SiteID, d time.Duration) {
	c.t.Helper()
	select {
	case err := <-c.daemons[site].exited:
		c.daemons[site].exited <- err // keep stop() from blocking
		c.t.Logf("site %d exited: %v", site, err)
	case <-time.After(d):
		c.t.Fatalf("site %d still alive after %v; failpoint never fired\n%s",
			site, d, c.daemons[site].out.Bytes())
	}
}

// partitionAll installs the same partition view on every surviving node.
func (c *cluster) partitionAll(groups ...[]types.SiteID) {
	c.t.Helper()
	for site, cl := range c.clients {
		if err := cl.Partition(groups...); err != nil {
			c.t.Fatalf("installing partition on site %d: %v", site, err)
		}
	}
}

// TestCoordinatorKill9 is the paper's Example made literal, over real
// sockets and real processes: the coordinator is SIGKILLed after every
// participant voted and before any decision escapes. Under QC1 the four
// survivors run the quorum-based termination protocol and all abort; under
// 2PC cooperative termination finds only uncertain peers and every survivor
// stays blocked, holding its locks.
func TestCoordinatorKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	for _, tc := range []struct {
		proto string
		want  types.Outcome
	}{
		{proto: "qc1", want: types.OutcomeAborted},
		{proto: "2pc", want: types.OutcomeBlocked},
	} {
		t.Run(tc.proto, func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, 5, tc.proto, 1)
			txn, err := c.clients[1].Begin(map[types.ItemID]int64{"x": 42})
			if err != nil {
				t.Fatalf("Begin at the doomed coordinator: %v", err)
			}
			c.awaitKill(1, 20*time.Second)
			// Survivors are polled concurrently: the blocked-2PC arm only
			// resolves at its deadline, by design.
			type res struct {
				site types.SiteID
				got  types.Outcome
				err  error
			}
			resCh := make(chan res, 4)
			for site := types.SiteID(2); site <= 5; site++ {
				go func(site types.SiteID) {
					got, err := c.clients[site].WaitOutcome(txn, 8*time.Second)
					resCh <- res{site, got, err}
				}(site)
			}
			for i := 0; i < 4; i++ {
				r := <-resCh
				if r.err != nil {
					t.Fatalf("WaitOutcome at site %d: %v\n%s", r.site, r.err, c.daemons[r.site].out.Bytes())
				}
				if r.got != tc.want {
					t.Errorf("%s survivor %d: outcome = %v, want %v", tc.proto, r.site, r.got, tc.want)
				}
			}
			// The aborted write must not have reached any surviving copy;
			// a blocked one must not either.
			for site := types.SiteID(2); site <= 5; site++ {
				if v, _, found, err := c.clients[site].Read("x"); err != nil || !found || v != 0 {
					t.Errorf("site %d copy of x = (%d, found=%v, err=%v), want untouched 0", site, v, found, err)
				}
			}
			if tc.proto == "qc1" {
				// A survivor's metrics must show the termination protocol:
				// at least one election round, ending in the abort it
				// reported above.
				vals := c.scrape(2)
				if got := metricSum(vals, "qcommit_txns_aborted_total"); got < 1 {
					t.Errorf("survivor aborted_total = %v, want >= 1", got)
				}
				if got := metricSum(vals, "qcommit_term_rounds_total"); got < 1 {
					t.Errorf("survivor term_rounds_total = %v, want >= 1 (termination protocol ran)", got)
				}
				if got := metricSum(vals, "qcommit_net_frames_total"); got == 0 {
					t.Error("survivor exchanged no frames according to /metrics")
				}
			}
		})
	}
}

// TestPartition drives a real multi-process partition through the control
// protocol. With every copy a participant, the unanimous vote phase cannot
// complete across the cut, so coordinators on both sides time out and abort
// — the point is that they *terminate* (abort is a safe pre-decision: no
// PREPARE-TO-COMMIT ever escaped) instead of wedging, and after the harness
// heals every node's view the cluster commits across all five sites again.
func TestPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	t.Parallel()
	c := startCluster(t, 5, "qc1", 0)
	c.partitionAll([]types.SiteID{1, 2}, []types.SiteID{3, 4, 5})

	minTxn, err := c.clients[1].Begin(map[types.ItemID]int64{"x": 99})
	if err != nil {
		t.Fatal(err)
	}
	majTxn, err := c.clients[3].Begin(map[types.ItemID]int64{"x": 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.clients[1].WaitOutcome(minTxn, 15*time.Second); err != nil || got != types.OutcomeAborted {
		t.Fatalf("minority coordinator: outcome = %v (err %v), want Aborted", got, err)
	}
	if got, err := c.clients[3].WaitOutcome(majTxn, 15*time.Second); err != nil || got != types.OutcomeAborted {
		t.Fatalf("majority coordinator: outcome = %v (err %v), want Aborted", got, err)
	}
	// The cut held: nothing crossed it, and nothing is blocked or locked.
	if v, _, found, err := c.clients[4].Read("x"); err != nil || !found || v != 0 {
		t.Errorf("partitioned copy of x = (%d, found=%v, err=%v), want untouched 0", v, found, err)
	}

	// Heal every node's view and show the cluster commits again everywhere.
	c.partitionAll()
	yTxn, err := c.clients[2].Begin(map[types.ItemID]int64{"y": 5})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.clients[2].WaitOutcome(yTxn, 15*time.Second); err != nil || got != types.OutcomeCommitted {
		t.Fatalf("post-heal transaction: outcome = %v (err %v), want Committed", got, err)
	}
	// The coordinator decides on a write quorum of PC-acks; remote copies
	// apply the Commit asynchronously, so the read converges rather than
	// being instant.
	for _, site := range []types.SiteID{1, 3, 5} {
		c.readEventually(site, "y", 5, 10*time.Second)
	}

	// The metrics catalogue must reflect the story the clients saw: both
	// partition-era coordinators counted their abort, the post-heal
	// coordinator counted its commit, and its commit latency histogram has
	// exactly the transactions it coordinated.
	for _, site := range []types.SiteID{1, 3} {
		if got := metricSum(c.scrape(site), "qcommit_txns_aborted_total"); got < 1 {
			t.Errorf("site %d aborted_total = %v, want >= 1", site, got)
		}
	}
	vals := c.scrape(2)
	if got := metricSum(vals, "qcommit_txns_committed_total"); got < 1 {
		t.Errorf("post-heal coordinator committed_total = %v, want >= 1", got)
	}
	if got := metricSum(vals, "qcommit_commit_ns_count"); got < 1 {
		t.Errorf("post-heal coordinator commit_ns samples = %v, want >= 1", got)
	}
}

// scrape fetches a site's /metrics endpoint and parses the Prometheus text
// into full-series values, keyed by name-with-labels.
func (c *cluster) scrape(site types.SiteID) map[string]float64 {
	c.t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", c.metrics[site]))
	if err != nil {
		c.t.Fatalf("scraping site %d: %v", site, err)
	}
	defer resp.Body.Close()
	vals := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		vals[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		c.t.Fatalf("reading site %d metrics: %v", site, err)
	}
	return vals
}

// metricSum adds up every series of base across its label sets.
func metricSum(vals map[string]float64, base string) float64 {
	var sum float64
	for name, v := range vals {
		if name == base || strings.HasPrefix(name, base+"{") {
			sum += v
		}
	}
	return sum
}

// readEventually polls site's copy of item until it holds want or the
// deadline passes.
func (c *cluster) readEventually(site types.SiteID, item types.ItemID, want int64, d time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(d)
	for {
		v, _, found, err := c.clients[site].Read(item)
		if err == nil && found && v == want {
			return
		}
		if time.Now().After(deadline) {
			c.t.Errorf("copy of %s at site %d = (%d, found=%v, err=%v), want %d", item, site, v, found, err, want)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
