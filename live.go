package qcommit

import (
	"fmt"
	"sort"
	"time"

	"qcommit/internal/live"
	"qcommit/internal/transport"
	"qcommit/internal/transport/tcp"
	"qcommit/internal/voting"
)

// LiveOptions configures a live (goroutine-per-site, wall-clock) cluster.
type LiveOptions struct {
	// Protocol selects the commit+termination protocol. Default ProtoQC1.
	Protocol Protocol
	// Strategy selects the data-access strategy (StrategyQuorum default, or
	// StrategyMissingWrites), as in Options.
	Strategy Strategy
	// Seed drives delay randomness.
	Seed int64
	// MinDelay/MaxDelay bound simulated propagation delay (wall clock).
	// Defaults 200µs–2ms.
	MinDelay, MaxDelay time.Duration
	// TimeoutBase is the protocol timeout unit T (default 4×MaxDelay; raise
	// it on loaded machines).
	TimeoutBase time.Duration
	// SkeenVc/SkeenVa as in Options.
	SkeenVc, SkeenVa int
	// Transport selects the fabric carrying protocol frames between sites:
	// "inproc" (or empty, the default) delivers through in-process mailboxes
	// with the simulated MinDelay/MaxDelay propagation; "tcp" gives every
	// site a real loopback TCP endpoint and runs each frame through the
	// stream codec and the sockets, trading speed for wire fidelity. For a
	// cluster of separate processes on separate machines, run cmd/qcommitd
	// instead.
	Transport string
}

// LiveCluster runs the same protocols on real goroutines and wall-clock
// timers — the deployment-shaped runtime, as opposed to the deterministic
// simulator behind Cluster. Protocol automata are shared between the two.
type LiveCluster struct {
	lc *live.Cluster
}

// NewLiveCluster builds and starts a live cluster (one goroutine per site).
// Call Stop when done.
func NewLiveCluster(items []ReplicatedItem, opts LiveOptions) (*LiveCluster, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("qcommit: at least one replicated item is required")
	}
	if !opts.Strategy.Valid() {
		return nil, fmt.Errorf("qcommit: invalid LiveOptions.Strategy %v", opts.Strategy)
	}
	if opts.MinDelay < 0 || opts.MaxDelay < 0 {
		return nil, fmt.Errorf("qcommit: negative delay bounds (MinDelay %v, MaxDelay %v)", opts.MinDelay, opts.MaxDelay)
	}
	if opts.MaxDelay != 0 && opts.MaxDelay < opts.MinDelay {
		return nil, fmt.Errorf("qcommit: MaxDelay %v < MinDelay %v", opts.MaxDelay, opts.MinDelay)
	}
	configs := make([]voting.ItemConfig, 0, len(items))
	siteSet := make(map[SiteID]bool)
	for _, it := range items {
		if len(it.Votes) != 0 && len(it.Votes) != len(it.Sites) {
			return nil, fmt.Errorf("qcommit: item %q: Votes length mismatch", it.Name)
		}
		copies := make([]voting.Copy, len(it.Sites))
		total := 0
		for i, s := range it.Sites {
			v := 1
			if len(it.Votes) > 0 {
				v = it.Votes[i]
			}
			copies[i] = voting.Copy{Site: s, Votes: v}
			total += v
			siteSet[s] = true
		}
		r, w := it.R, it.W
		if r == 0 && w == 0 {
			w = total/2 + 1
			r = total + 1 - w
		}
		configs = append(configs, voting.ItemConfig{Item: it.Name, Copies: copies, R: r, W: w})
	}
	asgn, err := voting.NewAssignment(configs...)
	if err != nil {
		return nil, err
	}
	sites := make([]SiteID, 0, len(siteSet))
	for s := range siteSet {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	spec, err := buildSpec(Options{Protocol: opts.Protocol, SkeenVc: opts.SkeenVc, SkeenVa: opts.SkeenVa}, sites)
	if err != nil {
		return nil, err
	}
	var tr transport.Transport
	timeoutBase := opts.TimeoutBase
	switch opts.Transport {
	case "", "inproc":
		// live.New builds the in-process fabric from the delay options.
	case "tcp":
		fab, err := tcp.NewFabric(sites, tcp.Options{})
		if err != nil {
			return nil, fmt.Errorf("qcommit: tcp transport: %w", err)
		}
		tr = fab
		if timeoutBase == 0 {
			// Loopback sockets don't pay the simulated propagation delay the
			// 4×MaxDelay default is calibrated for, but they do pay kernel
			// scheduling; give T socket-sized headroom.
			timeoutBase = 50 * time.Millisecond
		}
	default:
		return nil, fmt.Errorf("qcommit: unknown LiveOptions.Transport %q (want \"inproc\" or \"tcp\")", opts.Transport)
	}
	lc := live.New(live.Config{
		Assignment:  asgn,
		Strategy:    opts.Strategy,
		Spec:        spec,
		MinDelay:    opts.MinDelay,
		MaxDelay:    opts.MaxDelay,
		TimeoutBase: timeoutBase,
		Seed:        opts.Seed,
		Transport:   tr,
	})
	// Apply initial values.
	for _, it := range items {
		for _, s := range it.Sites {
			lc.Node(s).Store().Init(it.Name, it.Initial)
		}
	}
	return &LiveCluster{lc: lc}, nil
}

// Submit starts a transaction at the coordinator site.
func (c *LiveCluster) Submit(coord SiteID, writes map[ItemID]int64) TxnID {
	items := make([]ItemID, 0, len(writes))
	for it := range writes {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	ws := make(Writeset, 0, len(items))
	for _, it := range items {
		ws = append(ws, Update{Item: it, Value: writes[it]})
	}
	return c.lc.Begin(coord, ws)
}

// WaitOutcome blocks until the transaction reaches a uniform terminal
// outcome at all up sites, or the deadline passes.
func (c *LiveCluster) WaitOutcome(txn TxnID, deadline time.Duration) Outcome {
	return c.lc.WaitOutcome(txn, deadline)
}

// OutcomeAt reads txn's fate at one site.
func (c *LiveCluster) OutcomeAt(id SiteID, txn TxnID) Outcome { return c.lc.OutcomeAt(id, txn) }

// Violated reports whether txn terminated inconsistently anywhere.
func (c *LiveCluster) Violated(txn TxnID) bool { return c.lc.Violated(txn) }

// Crash takes a site down.
func (c *LiveCluster) Crash(id SiteID) { c.lc.Crash(id) }

// Restart recovers a crashed site from its WAL.
func (c *LiveCluster) Restart(id SiteID) { c.lc.Restart(id) }

// Partition splits the network.
func (c *LiveCluster) Partition(groups ...[]SiteID) { c.lc.Partition(groups...) }

// Heal reconnects the network.
func (c *LiveCluster) Heal() { c.lc.Heal() }

// Strategy returns the cluster's access strategy.
func (c *LiveCluster) Strategy() Strategy { return c.lc.Strategy() }

// ItemMode returns item's current missing-writes operating mode (always
// ModePessimistic under StrategyQuorum).
func (c *LiveCluster) ItemMode(item ItemID) Mode { return c.lc.ItemMode(item) }

// MissingWritesAt returns the sites currently carrying missing writes for
// item, ascending (always empty under StrategyQuorum).
func (c *LiveCluster) MissingWritesAt(item ItemID) []SiteID { return c.lc.MissingAt(item) }

// ModeTransitions returns the cumulative missing-writes mode transitions
// (demotions, restorations).
func (c *LiveCluster) ModeTransitions() (demotions, restorations int) {
	return c.lc.ModeTransitions()
}

// VoteEpoch returns the version number of item's current dynamic vote table
// (always 0 under the static strategies).
func (c *LiveCluster) VoteEpoch(item ItemID) uint64 { return c.lc.VoteEpoch(item) }

// VotesNow returns item's currently effective vote table, ascending by site
// (under StrategyDynamic, sites outside the majority basis are omitted).
func (c *LiveCluster) VotesNow(item ItemID) []VoteCopy { return c.lc.VotesNow(item) }

// VoteTransitions returns the cumulative dynamic-voting reassignment
// counters (tables installed, full-basis restorations).
func (c *LiveCluster) VoteTransitions() (reassignments, restorations int) {
	return c.lc.VoteTransitions()
}

// CopyAt reads the raw copy at one site.
func (c *LiveCluster) CopyAt(id SiteID, item ItemID) (int64, uint64, error) {
	v, err := c.lc.Node(id).Store().Read(item)
	if err != nil {
		return 0, 0, err
	}
	return v.Value, v.Version, nil
}

// Stop shuts down all site goroutines.
func (c *LiveCluster) Stop() { c.lc.Stop() }
