package qcommit

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCommandsSmoke builds and runs each CLI tool once, checking for the
// markers EXPERIMENTS.md promises. Guarded by -short for quick local runs.
func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke tests in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "figures-all",
			args: []string{"run", "./cmd/figures", "-all"},
			want: []string{
				"Fig. 1", "Fig. 4", "Fig. 6", "Fig. 9",
				"blocks in every partition",
				"terminated inconsistently",              // Example 2
				"VIOLATION",                              // Example 3 buggy run
				"no transition exists between PC and PA", // Fig. 6 note
			},
		},
		{
			name: "availbench",
			args: []string{"run", "./cmd/availbench", "-trials", "30"},
			want: []string{"protocol", "QC1", "QC2", "SkeenQ", "term-rate"},
		},
		{
			name: "qsim",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1",
				"-crash", "1", "-crashat", "15ms",
				"-partition", "1,2,3|4,5|6,7,8", "-partat", "15ms"},
			want: []string{"protocol: QC1", "outcome:", "network:"},
		},
		{
			// Scripted recovery: the partition heals and the crashed
			// coordinator restarts, so the interrupted transaction must
			// terminate at every site (no "blocked" in the per-site map).
			name: "qsim-recovery",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1",
				"-crash", "1", "-crashat", "15ms",
				"-partition", "1,2,3|4,5|6,7,8", "-partat", "15ms",
				"-heal", "300ms", "-restart", "1:350ms"},
			want: []string{"protocol: QC1", "outcome: aborted", "site1:aborted"},
		},
		{
			name: "churnbench",
			args: []string{"run", "./cmd/churnbench", "-runs", "4", "-horizon", "2s"},
			want: []string{"protocol", "2PC", "3PC", "SkeenQ", "QC1", "QC2", "p95(ms)", "blkshare", "rd-avl", "wr-avl"},
		},
		{
			// All three access strategies over the identical timelines: each
			// must label itself, and the availability columns must appear.
			name: "churnbench-strategies",
			args: []string{"run", "./cmd/churnbench", "-runs", "3", "-horizon", "2s",
				"-protocol", "QC1,QC2", "-strategy", "all"},
			want: []string{"=== strategy: quorum ===", "=== strategy: missing-writes ===",
				"=== strategy: dynamic ===", "strategy missing-writes", "strategy dynamic", "rd-avl"},
		},
		{
			// Adaptive strategy end-to-end: a replica crash after voting
			// demotes the item; restart + anti-entropy restores it.
			name: "missingwrites-example",
			args: []string{"run", "./examples/missingwrites"},
			want: []string{"mode=optimistic", "mode=pessimistic", "missing=[site4]",
				"read-one now refused", "1 demotion(s), 1 restoration(s)"},
		},
		{
			name: "qsim-missingwrites",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1", "-strategy", "mw",
				"-crash", "2", "-crashat", "15ms"},
			want: []string{"strategy: missing-writes", "access modes", "outcome:"},
		},
		{
			// Dynamic vote reassignment: the run reports per-item vote-table
			// epochs and the surviving bases.
			name: "qsim-dynamic",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1", "-strategy", "dv",
				"-crash", "2", "-crashat", "15ms"},
			want: []string{"strategy: dynamic", "vote tables", "epoch", "outcome:"},
		},
		{
			// Dynamic voting end-to-end: after the second failure the static
			// cluster is write-blocked while the dynamic basis stays
			// available; heal + catch-up restores the full table.
			name: "dynamicvoting-example",
			args: []string{"run", "./examples/dynamicvoting"},
			want: []string{
				"[quorum] write-available from site1 after the second failure? false",
				"[dynamic] write-available from site1 after the second failure? true",
				"stale pair {3,4} write-available in a minority partition? false",
				"2 reassignments, 1 restoration",
			},
		},
		{
			name: "churnstudy-example",
			args: []string{"run", "./examples/churnstudy"},
			want: []string{"repair-speed sweep", "MTTR = 100ms", "partition churn", "3PC violated atomicity"},
		},
		{
			// Closed-loop load against a live in-process cluster with the
			// optimized commit path: group WAL would need a directory, so the
			// smoke run uses the memory WAL and just checks the report shape.
			name: "loadbench",
			args: []string{"run", "./cmd/loadbench", "-transport", "inproc",
				"-wal", "mem", "-sites", "3", "-items", "8", "-clients", "8",
				"-zipf", "1.2", "-duration", "300ms"},
			want: []string{"txn/s", "p99", "abort"},
		},
		{
			// Real processes on real sockets: qcommitd daemons driven through
			// the client protocol, including a partition installed over the
			// control channel (terminates, never blocks) and a post-heal
			// commit.
			name: "networked-example",
			args: []string{"run", "./examples/networked"},
			want: []string{
				"cluster up: 3 qcommitd processes speaking QC1 over TCP",
				"committed",
				"aborted (terminated, not blocked)",
				"after heal",
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", tc.args, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q", want)
				}
			}
		})
	}
}

// TestLoadbenchJSON is the loadbench gate: a short deterministic run with the
// full optimized path (group WAL on disk, sharded locks) must emit the
// machine-readable document BENCH_live.json is built from, with sane fields.
func TestLoadbenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke tests in -short mode")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	out, err := exec.Command("go", "run", "./cmd/loadbench",
		"-transport", "inproc", "-wal", "group", "-waldir", dir,
		"-sites", "3", "-items", "8", "-clients", "8", "-zipf", "1.2",
		"-duration", "500ms", "-seed", "7", "-json", jsonPath).CombinedOutput()
	if err != nil {
		t.Fatalf("loadbench: %v\n%s", err, out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Command string `json:"command"`
		Runs    []struct {
			Label      string  `json:"label"`
			WAL        string  `json:"wal"`
			Completed  int     `json:"completed"`
			Committed  int     `json:"committed"`
			TxnsPerSec float64 `json:"txns_per_sec"`
			P99Ms      float64 `json:"p99_ms"`
			WALFsyncs  uint64  `json:"wal_fsyncs"`
			// Stage-level fields scraped from the obs registry.
			LockHoldP99Ms     float64 `json:"lock_hold_p99_ms"`
			WALFlushWaitP99Ms float64 `json:"wal_flush_wait_p99_ms"`
			WALSyncP99Ms      float64 `json:"wal_sync_p99_ms"`
			WALBatchMean      float64 `json:"wal_batch_mean"`
			FlushReleaseP99Ms float64 `json:"flush_release_wait_p99_ms"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, data)
	}
	if doc.Command == "" || len(doc.Runs) != 1 {
		t.Fatalf("want command + 1 run, got %q / %d runs", doc.Command, len(doc.Runs))
	}
	r := doc.Runs[0]
	if r.WAL != "group" || r.Committed <= 0 || r.TxnsPerSec <= 0 || r.P99Ms <= 0 {
		t.Errorf("implausible run: %+v", r)
	}
	// Group commit's point is amortization: a run this concurrent must have
	// forced the log fewer times than it committed transactions (each commit
	// writes multiple records across the 3 sites).
	if r.WALFsyncs == 0 || r.WALFsyncs >= uint64(r.Completed)*3 {
		t.Errorf("fsyncs = %d for %d completed txns: group commit not amortizing", r.WALFsyncs, r.Completed)
	}
	// The obs registry is scraped into the report by default: every
	// commit-path stage that runs under this config must have produced
	// samples (net_* fields are absent here — the transport is in-process).
	if r.LockHoldP99Ms <= 0 || r.WALFlushWaitP99Ms <= 0 || r.WALSyncP99Ms <= 0 || r.FlushReleaseP99Ms <= 0 {
		t.Errorf("missing stage-level percentiles: %+v", r)
	}
	// Group commit must show in the scrape too, and agree with the WAL's own
	// fsync counter: batches * mean records per batch ≈ records appended.
	if r.WALBatchMean < 1 {
		t.Errorf("wal_batch_mean = %v, want >= 1", r.WALBatchMean)
	}
}

// TestQcommitdGroupWAL starts a real qcommitd with -wal group and -pprof,
// waits for the ready line, shuts it down, and restarts it on the same WAL
// directory — the on-disk log must exist and the restart must come up (the
// recovery path runs on the non-empty directory).
func TestQcommitdGroupWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke tests in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "qcommitd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/qcommitd").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-site", "1", "-peers", "1=127.0.0.1:0",
			"-items", "x", "-wal", "group", "-waldir", dir, "-pprof", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		ready := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				if strings.Contains(sc.Text(), "serving") {
					ready <- sc.Text()
					return
				}
			}
			ready <- ""
		}()
		select {
		case line := <-ready:
			if line == "" {
				cmd.Process.Kill()
				t.Fatal("qcommitd exited before the ready line")
			}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Fatal("qcommitd never printed the ready line")
		}
		return cmd
	}
	stop := func(cmd *exec.Cmd) {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
			t.Fatal("qcommitd did not exit on SIGTERM")
		}
	}
	stop(start())
	walPath := filepath.Join(dir, "qcommitd-site1.wal")
	if _, err := os.Stat(walPath); err != nil {
		t.Fatalf("WAL file not created: %v", err)
	}
	stop(start()) // restart on the existing directory: recovery must not wedge startup
}
