package qcommit

import (
	"os/exec"
	"strings"
	"testing"
)

// TestCommandsSmoke builds and runs each CLI tool once, checking for the
// markers EXPERIMENTS.md promises. Guarded by -short for quick local runs.
func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI smoke tests in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "figures-all",
			args: []string{"run", "./cmd/figures", "-all"},
			want: []string{
				"Fig. 1", "Fig. 4", "Fig. 6", "Fig. 9",
				"blocks in every partition",
				"terminated inconsistently",              // Example 2
				"VIOLATION",                              // Example 3 buggy run
				"no transition exists between PC and PA", // Fig. 6 note
			},
		},
		{
			name: "availbench",
			args: []string{"run", "./cmd/availbench", "-trials", "30"},
			want: []string{"protocol", "QC1", "QC2", "SkeenQ", "term-rate"},
		},
		{
			name: "qsim",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1",
				"-crash", "1", "-crashat", "15ms",
				"-partition", "1,2,3|4,5|6,7,8", "-partat", "15ms"},
			want: []string{"protocol: QC1", "outcome:", "network:"},
		},
		{
			// Scripted recovery: the partition heals and the crashed
			// coordinator restarts, so the interrupted transaction must
			// terminate at every site (no "blocked" in the per-site map).
			name: "qsim-recovery",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1",
				"-crash", "1", "-crashat", "15ms",
				"-partition", "1,2,3|4,5|6,7,8", "-partat", "15ms",
				"-heal", "300ms", "-restart", "1:350ms"},
			want: []string{"protocol: QC1", "outcome: aborted", "site1:aborted"},
		},
		{
			name: "churnbench",
			args: []string{"run", "./cmd/churnbench", "-runs", "4", "-horizon", "2s"},
			want: []string{"protocol", "2PC", "3PC", "SkeenQ", "QC1", "QC2", "p95(ms)", "blkshare", "rd-avl", "wr-avl"},
		},
		{
			// All three access strategies over the identical timelines: each
			// must label itself, and the availability columns must appear.
			name: "churnbench-strategies",
			args: []string{"run", "./cmd/churnbench", "-runs", "3", "-horizon", "2s",
				"-protocol", "QC1,QC2", "-strategy", "all"},
			want: []string{"=== strategy: quorum ===", "=== strategy: missing-writes ===",
				"=== strategy: dynamic ===", "strategy missing-writes", "strategy dynamic", "rd-avl"},
		},
		{
			// Adaptive strategy end-to-end: a replica crash after voting
			// demotes the item; restart + anti-entropy restores it.
			name: "missingwrites-example",
			args: []string{"run", "./examples/missingwrites"},
			want: []string{"mode=optimistic", "mode=pessimistic", "missing=[site4]",
				"read-one now refused", "1 demotion(s), 1 restoration(s)"},
		},
		{
			name: "qsim-missingwrites",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1", "-strategy", "mw",
				"-crash", "2", "-crashat", "15ms"},
			want: []string{"strategy: missing-writes", "access modes", "outcome:"},
		},
		{
			// Dynamic vote reassignment: the run reports per-item vote-table
			// epochs and the surviving bases.
			name: "qsim-dynamic",
			args: []string{"run", "./cmd/qsim", "-protocol", "QC1", "-strategy", "dv",
				"-crash", "2", "-crashat", "15ms"},
			want: []string{"strategy: dynamic", "vote tables", "epoch", "outcome:"},
		},
		{
			// Dynamic voting end-to-end: after the second failure the static
			// cluster is write-blocked while the dynamic basis stays
			// available; heal + catch-up restores the full table.
			name: "dynamicvoting-example",
			args: []string{"run", "./examples/dynamicvoting"},
			want: []string{
				"[quorum] write-available from site1 after the second failure? false",
				"[dynamic] write-available from site1 after the second failure? true",
				"stale pair {3,4} write-available in a minority partition? false",
				"2 reassignments, 1 restoration",
			},
		},
		{
			name: "churnstudy-example",
			args: []string{"run", "./examples/churnstudy"},
			want: []string{"repair-speed sweep", "MTTR = 100ms", "partition churn", "3PC violated atomicity"},
		},
		{
			// Real processes on real sockets: qcommitd daemons driven through
			// the client protocol, including a partition installed over the
			// control channel (terminates, never blocks) and a post-heal
			// commit.
			name: "networked-example",
			args: []string{"run", "./examples/networked"},
			want: []string{
				"cluster up: 3 qcommitd processes speaking QC1 over TCP",
				"committed",
				"aborted (terminated, not blocked)",
				"after heal",
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v: %v\n%s", tc.args, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q", want)
				}
			}
		})
	}
}
