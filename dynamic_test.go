package qcommit

import (
	"errors"
	"reflect"
	"testing"
)

func dynamicItems() []ReplicatedItem {
	return []ReplicatedItem{
		{Name: "x", Sites: []SiteID{1, 2, 3, 4}, R: 2, W: 3, Initial: 10},
	}
}

// commitMissing runs one transaction that commits while the given site
// crashes mid-protocol (after voting), so the committed write misses that
// site's copy.
func commitMissing(t *testing.T, c *Cluster, miss SiteID, value int64) TxnID {
	t.Helper()
	txn := c.Submit(1, map[ItemID]int64{"x": value})
	c.CrashAt(Time(15*Millisecond), miss)
	c.Run()
	if got := c.Outcome(txn); got != OutcomeCommitted {
		t.Fatalf("write with %v crashing mid-commit: %v, want committed", miss, got)
	}
	return txn
}

// TestInvalidStrategyRejected: a dropped ParseStrategy error yields
// StrategyInvalid, which every constructor must reject rather than silently
// running the quorum default.
func TestInvalidStrategyRejected(t *testing.T) {
	bad, err := ParseStrategy("bogus")
	if err == nil {
		t.Fatal("bogus strategy parsed")
	}
	if bad == StrategyQuorum {
		t.Fatal("ParseStrategy error path returned the quorum zero value")
	}
	if _, err := NewCluster(dynamicItems(), Options{Strategy: bad}); err == nil {
		t.Error("invalid strategy accepted by NewCluster")
	}
}

// TestDynamicSecondFailureStaysWriteAvailable pins the headline dynamic
// voting scenario: after a first failure and a committed write the basis
// re-anchors on the three survivors, so a second failure leaves the
// surviving pair write-available — where the static quorum strategy is
// blocked (2 of the original 4 votes < w=3).
func TestDynamicSecondFailureStaysWriteAvailable(t *testing.T) {
	static := MustCluster(dynamicItems(), Options{Protocol: ProtoQC1, Strategy: StrategyQuorum, Seed: 7})
	dynamic := MustCluster(dynamicItems(), Options{Protocol: ProtoQC1, Strategy: StrategyDynamic, Seed: 7})

	if got := dynamic.Strategy(); got != StrategyDynamic {
		t.Fatalf("Strategy() = %v", got)
	}
	if e := dynamic.VoteEpoch("x"); e != 0 {
		t.Fatalf("initial epoch = %d", e)
	}

	// First failure: the commit reaches {1,2,3} and misses site 4.
	commitMissing(t, static, 4, 20)
	commitMissing(t, dynamic, 4, 20)
	if e := dynamic.VoteEpoch("x"); e != 1 {
		t.Fatalf("epoch after first miss = %d, want 1", e)
	}
	want := []VoteCopy{{Site: 1, Votes: 1}, {Site: 2, Votes: 1}, {Site: 3, Votes: 1}}
	if got := dynamic.VotesNow("x"); !reflect.DeepEqual(got, want) {
		t.Fatalf("basis after first miss = %v, want %v", got, want)
	}
	// One failure in, both strategies can still write (3 of 4 static votes;
	// 3 of 3 dynamic).
	if !static.CanWrite(1, "x") || !dynamic.CanWrite(1, "x") {
		t.Fatal("write availability lost after a single failure")
	}

	// Second failure: static quorum blocks, dynamic stays available.
	static.Crash(3)
	dynamic.Crash(3)
	if static.CanWrite(1, "x") {
		t.Error("static quorum write-available after the second failure (2 < w=3)")
	}
	if !dynamic.CanWrite(1, "x") {
		t.Error("dynamic voting lost write availability after the second failure")
	}
	if !dynamic.CanRead(1, "x") {
		t.Error("dynamic voting lost read availability after the second failure")
	}
	if v, err := dynamic.QuorumRead(1, "x"); err != nil || v != 20 {
		t.Errorf("QuorumRead from the surviving pair = %d, %v; want 20", v, err)
	}

	// The static strategy's bookkeeping never moves.
	if e := static.VoteEpoch("x"); e != 0 {
		t.Errorf("static cluster epoch = %d", e)
	}
	if re, ro := static.VoteTransitions(); re != 0 || ro != 0 {
		t.Errorf("static cluster vote transitions = %d/%d", re, ro)
	}
}

// TestDynamicStaleMinorityCannotQuorum: recovered stale copies in their own
// partition hold no majority under any table they know — the epoch guard
// end-to-end.
func TestDynamicStaleMinorityCannotQuorum(t *testing.T) {
	c := MustCluster(dynamicItems(), Options{Protocol: ProtoQC1, Strategy: StrategyDynamic, Seed: 7})
	commitMissing(t, c, 4, 20) // basis {1,2,3}, epoch 1
	c.Crash(3)

	c.Restart(3)
	c.Restart(4)
	c.Partition([]SiteID{3, 4}, []SiteID{1, 2})
	if c.CanWrite(3, "x") {
		t.Error("stale pair {3,4} formed a write quorum in a minority partition")
	}
	if _, err := c.QuorumRead(4, "x"); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("stale-pair read error = %v, want ErrNoQuorum", err)
	}
	// The survivor pair keeps working on its side of the split.
	if !c.CanWrite(1, "x") {
		t.Error("current basis lost availability to the stale partition")
	}

	// Heal: the catch-up pass folds the stale copies back in and restores
	// the full table.
	c.Heal()
	c.Run()
	if got := len(c.VotesNow("x")); got != 4 {
		t.Fatalf("basis after heal has %d sites, want 4: %v", got, c.VotesNow("x"))
	}
	if re, ro := c.VoteTransitions(); re < 2 || ro != 1 {
		t.Errorf("transitions after heal = %d/%d, want ≥2 reassignments and exactly 1 restoration", re, ro)
	}
	if v := c.Violations(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// TestDynamicRestartRejoinsViaAntiEntropy: a crashed-and-restarted copy
// rejoins the basis through the restart-time copy sync alone (no Heal).
func TestDynamicRestartRejoinsViaAntiEntropy(t *testing.T) {
	c := MustCluster(dynamicItems(), Options{Protocol: ProtoQC1, Strategy: StrategyDynamic, Seed: 7})
	commitMissing(t, c, 4, 20) // basis {1,2,3}, epoch 1
	c.Restart(4)
	c.Run()
	if got := len(c.VotesNow("x")); got != 4 {
		t.Fatalf("basis after restart has %d sites, want 4: %v", got, c.VotesNow("x"))
	}
	if e := c.VoteEpoch("x"); e != 2 {
		t.Errorf("epoch after rejoin = %d, want 2", e)
	}
	if re, ro := c.VoteTransitions(); re != 2 || ro != 1 {
		t.Errorf("transitions = %d/%d, want 2/1", re, ro)
	}
	// Fully restored: a fresh write commits and touches every copy, so the
	// basis (and epoch) stay put.
	txn := c.Submit(1, map[ItemID]int64{"x": 30})
	c.Run()
	if got := c.Outcome(txn); got != OutcomeCommitted {
		t.Fatalf("post-restore write = %v", got)
	}
	if e := c.VoteEpoch("x"); e != 2 {
		t.Errorf("full-strength commit churned the epoch to %d", e)
	}
	if v, _, err := c.CopyAt(4, "x"); err != nil || v != 30 {
		t.Errorf("site4 copy = %d, %v; want 30", v, err)
	}
}
