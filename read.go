package qcommit

import (
	"errors"
	"fmt"

	"qcommit/internal/storage"
)

// Data-access errors.
var (
	// ErrNoQuorum means the reachable, unlocked copies do not carry enough
	// votes for the operation.
	ErrNoQuorum = errors.New("qcommit: replica quorum not reachable")
	// ErrUnknownItem means the item has no replica configuration.
	ErrUnknownItem = errors.New("qcommit: unknown item")
)

// QuorumRead performs a weighted-voting read of item as seen from the given
// site: it collects copies from up sites in the same partition group whose
// copies are not locked by a pending transaction, requires r(x) votes, and
// returns the value with the highest version number (which the constraint
// r+w > v guarantees is the most recently committed one).
func (c *Cluster) QuorumRead(from SiteID, item ItemID) (int64, error) {
	asgn := c.eng.Assignment()
	ic, ok := asgn.Item(item)
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownItem, item)
	}
	net := c.eng.Network()
	votes := 0
	var copies []storage.Versioned
	for _, cp := range ic.Copies {
		if net.Down(cp.Site) || !net.Connected(from, cp.Site) {
			continue
		}
		site := c.eng.Site(cp.Site)
		if locked := site.Locks().Locked(item); locked {
			continue // held by a pending (possibly blocked) transaction
		}
		v, err := site.Store().Read(item)
		if err != nil {
			continue
		}
		copies = append(copies, v)
		votes += cp.Votes
	}
	if votes < ic.R {
		return 0, fmt.Errorf("%w: item %q has %d free votes reachable from %s, read quorum is %d",
			ErrNoQuorum, item, votes, from, ic.R)
	}
	best, err := storage.ResolveRead(copies)
	if err != nil {
		return 0, err
	}
	return best.Value, nil
}

// CanWrite reports whether a transaction writing item could assemble a write
// quorum from the given site's partition right now (up, connected, unlocked
// copies carrying ≥ w(x) votes).
func (c *Cluster) CanWrite(from SiteID, item ItemID) bool {
	asgn := c.eng.Assignment()
	ic, ok := asgn.Item(item)
	if !ok {
		return false
	}
	net := c.eng.Network()
	votes := 0
	for _, cp := range ic.Copies {
		if net.Down(cp.Site) || !net.Connected(from, cp.Site) {
			continue
		}
		if c.eng.Site(cp.Site).Locks().Locked(item) {
			continue
		}
		votes += cp.Votes
	}
	return votes >= ic.W
}

// CanRead is the read-quorum counterpart of CanWrite.
func (c *Cluster) CanRead(from SiteID, item ItemID) bool {
	_, err := c.QuorumRead(from, item)
	return err == nil
}

// CopyAt returns the raw copy (value, version) stored at one site, without
// quorum checking — a debugging/verification helper.
func (c *Cluster) CopyAt(id SiteID, item ItemID) (value int64, version uint64, err error) {
	v, err := c.eng.Site(id).Store().Read(item)
	if err != nil {
		return 0, 0, err
	}
	return v.Value, v.Version, nil
}
