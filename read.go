package qcommit

import (
	"qcommit/internal/engine"
)

// Data-access errors. All three paths (QuorumRead, CanWrite, CanRead) share
// one vote-counting pass in the engine, so they classify failures
// identically.
var (
	// ErrNoQuorum means the reachable, unlocked copies do not carry enough
	// votes for the operation under the item's current access mode.
	ErrNoQuorum = engine.ErrNoQuorum
	// ErrUnknownItem means the item has no replica configuration.
	ErrUnknownItem = engine.ErrUnknownItem
	// ErrSiteDown means the site issuing the operation is itself down — a
	// crashed site cannot assemble quorums or serve reads.
	ErrSiteDown = engine.ErrSiteDown
)

// QuorumRead performs a strategy-aware read of item as seen from the given
// site: it collects copies from up sites in the same partition group whose
// copies are not locked by a pending transaction, requires the item's
// current read quorum, and returns the value with the highest version
// number. Under StrategyQuorum the quorum is always r(x) votes (which the
// constraint r+w > v guarantees includes the most recently committed copy);
// under StrategyMissingWrites an item in optimistic mode needs only a single
// fresh copy (read-one), while a demoted item needs r(x) votes among copies
// not carrying missing writes.
func (c *Cluster) QuorumRead(from SiteID, item ItemID) (int64, error) {
	v, err := c.eng.ReadItem(from, item)
	if err != nil {
		return 0, err
	}
	return v.Value, nil
}

// CanWrite reports whether a transaction writing item could assemble a write
// quorum from the given site's partition right now (up, connected, unlocked
// copies carrying ≥ w(x) votes). Under StrategyMissingWrites the threshold
// stays w(x): an optimistic write tries to reach every copy, but one that
// reaches at least the pessimistic quorum proceeds and demotes the item
// instead of failing.
func (c *Cluster) CanWrite(from SiteID, item ItemID) bool {
	return c.eng.CanWrite(from, item)
}

// CanRead is the read-quorum counterpart of CanWrite. It shares the
// vote-counting pass with QuorumRead but resolves no values and allocates
// nothing.
func (c *Cluster) CanRead(from SiteID, item ItemID) bool {
	return c.eng.CanRead(from, item)
}

// Strategy returns the cluster's access strategy.
func (c *Cluster) Strategy() Strategy { return c.eng.Strategy() }

// Items returns the replicated item names in declaration order.
func (c *Cluster) Items() []ItemID { return c.eng.Assignment().Items() }

// ItemMode returns item's current missing-writes operating mode. Under
// StrategyQuorum every item is permanently ModePessimistic (quorum
// operations only); under StrategyMissingWrites items start ModeOptimistic
// and move between the modes as writes miss copies and stale copies catch
// up.
func (c *Cluster) ItemMode(item ItemID) Mode { return c.eng.ItemMode(item) }

// MissingWritesAt returns the sites currently carrying missing writes for
// item (always empty under StrategyQuorum), ascending.
func (c *Cluster) MissingWritesAt(item ItemID) []SiteID { return c.eng.MissingAt(item) }

// ModeTransitions returns the cumulative missing-writes mode transitions
// observed so far: demotions (optimistic→pessimistic) and restorations (the
// reverse). Both are zero under StrategyQuorum.
func (c *Cluster) ModeTransitions() (demotions, restorations int) {
	return c.eng.ModeTransitions()
}

// VoteEpoch returns the version number of item's current dynamic vote table
// — how many reassignments the item has been through. Always 0 under the
// static strategies.
func (c *Cluster) VoteEpoch(item ItemID) uint64 { return c.eng.VoteEpoch(item) }

// VotesNow returns item's currently effective vote table, ascending by
// site: the static assignment under StrategyQuorum and
// StrategyMissingWrites, the newest reassigned table under StrategyDynamic
// (sites outside the current majority basis hold no votes and are omitted).
func (c *Cluster) VotesNow(item ItemID) []VoteCopy { return c.eng.VotesNow(item) }

// VoteTransitions returns the cumulative dynamic-voting reassignment
// counters: vote tables installed, and the subset that restored the full
// static copy set. Both are zero under the other strategies.
func (c *Cluster) VoteTransitions() (reassignments, restorations int) {
	return c.eng.VoteTransitions()
}

// CopyAt returns the raw copy (value, version) stored at one site, without
// quorum checking — a debugging/verification helper.
func (c *Cluster) CopyAt(id SiteID, item ItemID) (value int64, version uint64, err error) {
	v, err := c.eng.Site(id).Store().Read(item)
	if err != nil {
		return 0, 0, err
	}
	return v.Value, v.Version, nil
}
